// Reproduces **Fig 4a** — volume rendering of an aneurysm data set — and
// quantifies its parallel behaviour:
//   * renders the velocity-magnitude field of a developed aneurysm flow and
//     writes fig4a_volume.ppm (the figure itself),
//   * sweeps image sizes to show compositing traffic scales with the image
//     (not the data) — the property that makes volume rendering the paper's
//     "low communication" technique,
//   * ablates the two compositing strategies (direct-send vs binary-swap).

#include "common.hpp"
#include "io/ppm.hpp"
#include "vis/volume.hpp"

int main() {
  using namespace hemobench;
  const auto lattice = makeAneurysm(0.12);
  std::printf("workload: aneurysm vessel, %llu fluid sites (%.1f KB of "
              "velocity data)\n",
              static_cast<unsigned long long>(lattice.numFluidSites()),
              static_cast<double>(lattice.numFluidSites()) * 24 / 1e3);

  auto makeOptions = [&](int size) {
    vis::VolumeRenderOptions vro;
    vro.width = size;
    vro.height = size;
    vro.camera.position = {2.5, 1.0, 8.0};
    vro.camera.target = {2.5, 0.6, 0.0};
    vro.transfer = vis::TransferFunction::bloodFlow(0.f, 0.0015f);
    return vro;
  };

  // --- the figure -------------------------------------------------------------
  {
    const int ranks = 4;
    const auto part = kwayPartition(lattice, ranks);
    comm::Runtime rt(ranks);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lattice, part, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, flowParams());
      solver.run(300);
      const auto img = vis::renderVolume(comm, domain, solver.macro(),
                                         makeOptions(384));
      if (comm.rank() == 0) {
        io::writePpm("fig4a_volume.ppm", img.width(), img.height(),
                     img.toRgb8());
        std::printf("wrote fig4a_volume.ppm (384x384)\n");
      }
    });
  }

  // --- image-size sweep ---------------------------------------------------------
  printHeader("Fig 4a series: compositing traffic vs image size (4 ranks)");
  std::printf("%-10s %14s %12s %14s\n", "image", "comm KB", "msgs",
              "busy imbalance");
  for (const int size : {64, 128, 256, 512}) {
    const int ranks = 4;
    const auto part = kwayPartition(lattice, ranks);
    PhaseSummary summary;
    comm::Runtime rt(ranks);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lattice, part, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, flowParams());
      solver.run(60);
      comm.barrier();
      const auto sample = measurePhase(comm, [&] {
        vis::renderVolume(comm, domain, solver.macro(), makeOptions(size));
      });
      const auto s = summarizePhase(comm, sample);
      if (comm.rank() == 0) summary = s;
    });
    std::printf("%4dx%-5d %14.1f %12llu %14.3f\n", size, size,
                static_cast<double>(summary.totalBytes) / 1e3,
                static_cast<unsigned long long>(summary.totalMessages),
                summary.imbalance);
  }

  // --- compositing ablation ---------------------------------------------------------
  printHeader("Fig 4a ablation: direct-send vs binary-swap compositing "
              "(256x256 image)");
  std::printf("%-8s %-14s %14s %12s %18s %16s\n", "ranks", "mode",
              "comm KB", "msgs", "max-rank recv KB", "busy imbal");
  for (const int ranks : {2, 4, 8}) {
    const auto part = kwayPartition(lattice, ranks);
    for (const auto mode : {vis::CompositeMode::kDirectSend,
                            vis::CompositeMode::kBinarySwap}) {
      PhaseSummary summary;
      comm::Runtime rt(ranks);
      rt.run([&](comm::Communicator& comm) {
        lb::DomainMap domain(lattice, part, comm.rank());
        lb::SolverD3Q19 solver(domain, comm, flowParams());
        solver.run(60);
        comm.barrier();
        const auto sample = measurePhase(comm, [&] {
          vis::renderVolume(comm, domain, solver.macro(), makeOptions(256),
                            mode);
        });
        const auto s = summarizePhase(comm, sample);
        if (comm.rank() == 0) summary = s;
      });
      std::printf("%-8d %-14s %14.1f %12llu %18.1f %16.3f\n", ranks,
                  mode == vis::CompositeMode::kDirectSend ? "direct-send"
                                                          : "binary-swap",
                  static_cast<double>(summary.totalBytes) / 1e3,
                  static_cast<unsigned long long>(summary.totalMessages),
                  static_cast<double>(summary.maxRankRecvBytes) / 1e3,
                  summary.imbalance);
    }
  }
  std::printf("\nexpected shape: traffic grows with image area, is "
              "independent of\nthe data size; binary-swap spreads the "
              "compositing load (the\ndirect-send master receives "
              "everything; binary-swap's max-rank\nreceive volume stays "
              "flat) at the cost of more messages.\n");
  return 0;
}
