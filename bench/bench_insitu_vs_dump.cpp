// Reproduces the **§I/§IV.C motivating claim** (I1): "As computation
// approaches the exascale, it will no longer be possible to write and
// store the full-sized data set. In situ data analysis and scientific
// visualisation provide feasible solutions."
//
// Runs the same simulation twice over a fixed number of steps:
//   (a) the traditional workflow — dump the full distribution state to
//       disk at every analysis point (checkpoint-style full write);
//   (b) the in situ workflow — run the Fig 3 pipeline at the same points
//       and emit only its products (image + statistics + context nodes).
// Reports bytes produced, and the ratio as the analysis cadence rises
// (interactivity pushes the cadence up — exactly where full dumps die).

#include <cstdio>

#include "common.hpp"
#include "core/driver.hpp"
#include "lb/checkpoint.hpp"

int main() {
  using namespace hemobench;
  const auto lattice = makeAneurysm(0.1);
  const int ranks = 4;
  const auto part = kwayPartition(lattice, ranks);
  const int steps = 60;
  std::printf("workload: aneurysm vessel, %llu sites, %d ranks, %d steps\n",
              static_cast<unsigned long long>(lattice.numFluidSites()),
              ranks, steps);

  BenchReport report("insitu_vs_dump");
  report.setParam("workload", std::string("aneurysm"));
  report.setParam("sites", static_cast<std::int64_t>(lattice.numFluidSites()));
  report.setParam("ranks", static_cast<std::int64_t>(ranks));
  report.setParam("steps", static_cast<std::int64_t>(steps));

  printHeader("I1: full-state dumps vs in situ reduction");
  std::printf("%-10s %18s %18s %12s\n", "cadence", "dump MB total",
              "in situ KB total", "ratio");

  for (const int every : {20, 10, 5}) {
    // (a) full dumps.
    std::uint64_t dumpBytes = 0;
    {
      comm::Runtime rt(ranks);
      rt.run([&](comm::Communicator& comm) {
        lb::DomainMap domain(lattice, part, comm.rank());
        lb::SolverD3Q19 solver(domain, comm, flowParams());
        std::uint64_t written = 0;
        for (int s = 1; s <= steps; ++s) {
          solver.step();
          if (s % every == 0) {
            written += lb::writeCheckpoint("/tmp/hemo_bench_dump.bin",
                                           solver, comm);
          }
        }
        if (comm.rank() == 0) dumpBytes = written;
      });
      std::remove("/tmp/hemo_bench_dump.bin");
      std::remove("/tmp/hemo_bench_dump.bin.s0");  // v2 stripe file
    }

    // (b) in situ pipeline at the same cadence; output = image + stats +
    //     context level nodes.
    std::uint64_t insituBytes = 0;
    {
      comm::Runtime rt(ranks);
      rt.run([&](comm::Communicator& comm) {
        lb::DomainMap domain(lattice, part, comm.rank());
        core::DriverConfig cfg;
        cfg.lb = flowParams(true);
        cfg.computeWss = true;
        cfg.visEvery = every;
        cfg.statusEvery = 0;
        cfg.render.width = 128;
        cfg.render.height = 128;
        cfg.render.camera.position = {2.5, 1.0, 8.0};
        cfg.render.camera.target = {2.5, 0.5, 0.0};
        core::SimulationDriver driver(domain, comm, cfg);
        std::uint64_t produced = 0;
        int done = 0;
        while (done < steps) {
          driver.run(every);
          done += every;
          const auto& out = driver.lastOutputs();
          if (comm.rank() == 0) {
            produced += out.volumeImage.numPixels() * 3;  // RGB8 frame
            produced += out.contextNodes.size() * sizeof(multires::OctreeNode);
            produced += 6 * sizeof(double);  // the reduced statistics
          }
        }
        if (comm.rank() == 0) insituBytes = produced;
      });
    }

    std::printf("1/%-8d %18.2f %18.1f %11.0fx\n", every,
                static_cast<double>(dumpBytes) / 1e6,
                static_cast<double>(insituBytes) / 1e3,
                static_cast<double>(dumpBytes) /
                    static_cast<double>(insituBytes));

    auto& row = report.addRow("cadence_1_" + std::to_string(every));
    row.set("analysisEvery", static_cast<std::uint64_t>(every));
    row.set("dumpBytes", dumpBytes);
    row.set("insituBytes", insituBytes);
    row.set("ratio", static_cast<double>(dumpBytes) /
                         static_cast<double>(insituBytes));
  }
  // The claim's core: the gap *widens with resolution*, because the dump
  // scales with the state while the in situ products are resolution-free.
  printHeader("I1 series: ratio vs lattice resolution (cadence 1/10)");
  std::printf("%-12s %12s %18s %18s %10s\n", "voxel", "sites",
              "dump MB/analysis", "in situ KB/frame", "ratio");
  for (const double voxel : {0.2, 0.15, 0.1}) {
    const auto lat = makeAneurysm(voxel);
    const auto p = kwayPartition(lat, ranks);
    // One dump = header + ids + Q distributions.
    const double dumpMb =
        static_cast<double>(lat.numFluidSites()) * (8 + 19 * 8) / 1e6;
    // One in situ product = frame + context nodes + stats (constants).
    const double insituKb =
        (128.0 * 128.0 * 3.0 + 64 * sizeof(multires::OctreeNode) + 48) / 1e3;
    std::printf("%-12.2f %12llu %18.2f %18.1f %9.0fx\n", voxel,
                static_cast<unsigned long long>(lat.numFluidSites()), dumpMb,
                insituKb, dumpMb * 1e3 / insituKb);
    (void)p;

    char label[32];
    std::snprintf(label, sizeof label, "voxel_%.2f", voxel);
    auto& row = report.addRow(label);
    row.set("voxel", voxel);
    row.set("sites", static_cast<std::uint64_t>(lat.numFluidSites()));
    row.set("dumpMbPerAnalysis", dumpMb);
    row.set("insituKbPerFrame", insituKb);
    row.set("ratio", dumpMb * 1e3 / insituKb);
  }
  report.write();
  std::printf("\nexpected shape: dumps scale with (state size x cadence); in "
              "situ output\nscales with (image + reduced stats) only. The "
              "gap is orders of magnitude\nand widens with resolution — the "
              "paper's reason to process in situ.\n");
  return 0;
}
