// Reproduces **Fig 3** — the post-processing pipeline with user
// interaction — as a stage-cost experiment: where does an in situ pass
// spend its time (extraction / filtering / mapping / rendering), and how
// do the stage costs respond to the knobs a user steers (image size, seed
// count, multires context level)?

#include "common.hpp"
#include "core/driver.hpp"

namespace {

using namespace hemobench;

struct StageCosts {
  double extract = 0, filter = 0, map = 0, render = 0;
};

StageCosts measure(const geometry::SparseLattice& lattice,
                   const partition::Partition& part, int ranks, int imageSize,
                   int seeds, int contextLevel, int passes) {
  StageCosts costs;
  comm::Runtime rt(ranks);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, part, comm.rank());
    core::DriverConfig cfg;
    cfg.lb = flowParams(true);
    cfg.visEvery = 0;
    cfg.statusEvery = 0;
    cfg.render.width = imageSize;
    cfg.render.height = imageSize;
    cfg.render.camera.position = {2.5, 1.0, 8.0};
    cfg.render.camera.target = {2.5, 0.5, 0.0};
    cfg.contextLevel = contextLevel;
    if (seeds > 0) {
      cfg.streamSeeds = vis::discSeeds({0.3, 0, 0}, {1, 0, 0}, 0.8, seeds);
    }
    core::SimulationDriver driver(domain, comm, cfg);
    driver.run(60);
    driver.pipeline().resetTimers();
    for (int p = 0; p < passes; ++p) driver.runPipelineNow();
    // Max across ranks of each stage's CPU time = the stage's critical
    // path.
    auto& pipe = driver.pipeline();
    const double e = comm.allreduceMax(pipe.stageSeconds(0));
    const double f = comm.allreduceMax(pipe.stageSeconds(1));
    const double m = comm.allreduceMax(pipe.stageSeconds(2));
    const double r = comm.allreduceMax(pipe.stageSeconds(3));
    if (comm.rank() == 0) {
      costs.extract = e * 1e3 / passes;
      costs.filter = f * 1e3 / passes;
      costs.map = m * 1e3 / passes;
      costs.render = r * 1e3 / passes;
    }
  });
  return costs;
}

void printRow(const char* label, const StageCosts& c) {
  const double total = c.extract + c.filter + c.map + c.render;
  std::printf("%-26s %9.2f %9.2f %9.2f %9.2f %9.2f\n", label, c.extract,
              c.filter, c.map, c.render, total);
}

}  // namespace

int main() {
  using namespace hemobench;
  const auto lattice = makeAneurysm(0.12);
  const int ranks = 4;
  const auto part = kwayPartition(lattice, ranks);
  std::printf("workload: aneurysm vessel, %llu sites, %d ranks; per-stage "
              "cost in ms (max across ranks, mean of 5 passes)\n",
              static_cast<unsigned long long>(lattice.numFluidSites()),
              ranks);

  printHeader("Fig 3: pipeline stage costs under steered parameters");
  std::printf("%-26s %9s %9s %9s %9s %9s\n", "configuration", "extract",
              "filter", "map", "render", "total");

  printRow("baseline (128px,32 seeds)",
           measure(lattice, part, ranks, 128, 32, 2, 5));
  printRow("image 256px",
           measure(lattice, part, ranks, 256, 32, 2, 5));
  printRow("image 512px",
           measure(lattice, part, ranks, 512, 32, 2, 5));
  printRow("seeds 128",
           measure(lattice, part, ranks, 128, 128, 2, 5));
  printRow("seeds 512",
           measure(lattice, part, ranks, 128, 512, 2, 5));
  printRow("no streamlines",
           measure(lattice, part, ranks, 128, 0, 2, 5));
  printRow("context level 4",
           measure(lattice, part, ranks, 128, 32, 4, 5));

  std::printf("\nexpected shape: render cost tracks the image area, map "
              "cost tracks the\nseed count, extract/filter are steady — the "
              "pipeline exposes exactly\nthe knobs the Fig 3 user loop "
              "turns.\n");
  return 0;
}
