// Reproduces the **§IV.B parallel-read claim** (P1): "A subset of the cores
// then read the detailed geometry data and distribute the data ... the
// number of reading cores enables control over the balance between file
// I/O and distribution communication."
//
// Sweeps the reading-core count for a fixed 16-rank run and reports the
// two sides of the trade: bytes each reader pulls from the file system
// (file-system stress per reader) vs bytes redistributed over the network.

#include <cstdio>

#include "common.hpp"
#include "geometry/parallel_reader.hpp"
#include "geometry/sgmy.hpp"

int main() {
  using namespace hemobench;
  const auto lattice = makeBifurc(0.12);
  const std::string path = "/tmp/hemo_bench_preproc.sgmy";
  if (!geometry::writeSgmy(path, lattice)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  const auto header = geometry::readSgmyHeader(path);
  std::uint64_t payloadBytes = 0;
  for (const auto& e : header.blockTable) payloadBytes += e.payloadBytes;
  std::printf("geometry: %llu sites, %zu blocks, %.1f KB of payload\n",
              static_cast<unsigned long long>(header.totalFluidSites()),
              header.blockTable.size(),
              static_cast<double>(payloadBytes) / 1e3);

  printHeader("P1: reading cores vs distribution communication (16 ranks)");
  std::printf("%-9s %16s %16s %14s %12s\n", "readers", "KB/reader (fs)",
              "network KB", "msgs", "wall ms");
  for (const int readers : {1, 2, 4, 8, 16}) {
    comm::Runtime rt(16);
    std::uint64_t maxDisk = 0;
    double wall = 0.0;
    rt.run([&](comm::Communicator& comm) {
      comm.barrier();
      WallTimer timer;
      const auto result = geometry::readSgmyDistributed(comm, path, readers);
      const double mine = timer.seconds();
      const auto disk = comm.allreduceMax(result.bytesReadFromDisk);
      const double t = comm.allreduceMax(mine);
      if (comm.rank() == 0) {
        maxDisk = disk;
        wall = t;
      }
    });
    const auto io = rt.totalCounters().of(comm::Traffic::kIo);
    std::printf("%-9d %16.1f %16.1f %14llu %12.2f\n", readers,
                static_cast<double>(maxDisk) / 1e3,
                static_cast<double>(io.bytesSent) / 1e3,
                static_cast<unsigned long long>(io.messagesSent),
                wall * 1e3);
  }
  std::printf("\nexpected shape: more readers -> less network redistribution "
              "but more\nconcurrent file-system clients; one reader touches "
              "the file once and\nships ~everything. The knob trades the two "
              "— exactly §IV.B's claim.\n");
  std::remove(path.c_str());
  return 0;
}
