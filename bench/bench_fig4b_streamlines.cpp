// Reproduces **Fig 4b** — streamline visualisation of an aneurysm data set
// — and quantifies the distributed tracing cost the paper's §IV.D warns
// about ("algorithms which need a lot of neighbourhood searching, such as
// path-lines, are challenging ... huge amount of communication"):
//   * traces inlet-seeded streamlines through a developed aneurysm flow and
//     writes fig4b_streamlines.ppm (lines over a translucent volume),
//   * sweeps the seed count and reports migrations, exchange rounds and
//     communication volume,
//   * sweeps the rank count at a fixed seed count: migrations grow with the
//     number of cuts a line crosses.

#include "common.hpp"
#include "io/ppm.hpp"
#include "vis/line_render.hpp"
#include "vis/sampler.hpp"
#include "vis/streamlines.hpp"
#include "vis/volume.hpp"

int main() {
  using namespace hemobench;
  const auto lattice = makeAneurysm(0.12);
  std::printf("workload: aneurysm vessel, %llu fluid sites\n",
              static_cast<unsigned long long>(lattice.numFluidSites()));

  // --- the figure --------------------------------------------------------------
  {
    const int ranks = 4;
    const auto part = kwayPartition(lattice, ranks);
    comm::Runtime rt(ranks);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lattice, part, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, flowParams());
      solver.run(300);
      vis::GhostedField ghosts(domain, comm, 2);
      ghosts.refresh(solver.macro(), comm);
      vis::StreamlineParams sp;
      sp.maxVertices = 1200;
      const auto lines = vis::traceStreamlines(
          comm, ghosts, vis::discSeeds({0.3, 0, 0}, {1, 0, 0}, 0.8, 28), sp);

      vis::VolumeRenderOptions vro;
      vro.width = 384;
      vro.height = 288;
      vro.camera.position = {2.5, 1.2, 8.5};
      vro.camera.target = {2.5, 0.7, 0.0};
      vro.transfer = vis::TransferFunction::bloodFlow(0.f, 0.01f);
      auto img = vis::renderVolume(comm, domain, solver.macro(), vro);
      if (comm.rank() == 0) {
        vis::drawPolylines(img, vro.camera, lines);
        io::writePpm("fig4b_streamlines.ppm", img.width(), img.height(),
                     img.toRgb8());
        std::printf("wrote fig4b_streamlines.ppm (%zu lines)\n",
                    lines.size());
      }
    });
  }

  // --- seed-count sweep ------------------------------------------------------------
  printHeader("Fig 4b series: tracing cost vs seed count (4 ranks)");
  std::printf("%-8s %12s %10s %10s %12s %12s\n", "seeds", "migrations",
              "rounds", "comm KB", "msgs", "imbalance");
  for (const int seeds : {16, 64, 256, 1024}) {
    const int ranks = 4;
    const auto part = kwayPartition(lattice, ranks);
    vis::TraceStats stats;
    PhaseSummary summary;
    comm::Runtime rt(ranks);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lattice, part, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, flowParams());
      solver.run(120);
      vis::GhostedField ghosts(domain, comm, 2);
      ghosts.refresh(solver.macro(), comm);
      vis::StreamlineParams sp;
      sp.maxVertices = 600;
      comm.barrier();
      const auto sample = measurePhase(comm, [&] {
        vis::traceStreamlines(
            comm, ghosts,
            vis::discSeeds({0.3, 0, 0}, {1, 0, 0}, 0.8, seeds), sp, &stats);
      });
      const auto s = summarizePhase(comm, sample);
      if (comm.rank() == 0) summary = s;
    });
    std::printf("%-8d %12llu %10llu %10.1f %12llu %12.3f\n", seeds,
                static_cast<unsigned long long>(stats.migrations),
                static_cast<unsigned long long>(stats.rounds),
                static_cast<double>(summary.totalBytes) / 1e3,
                static_cast<unsigned long long>(summary.totalMessages),
                summary.imbalance);
  }

  // --- rank-count sweep -------------------------------------------------------------
  printHeader("Fig 4b series: migrations vs rank count (256 seeds)");
  std::printf("%-8s %12s %10s %12s\n", "ranks", "migrations", "rounds",
              "comm KB");
  for (const int ranks : {1, 2, 4, 8, 16}) {
    const auto part = kwayPartition(lattice, ranks);
    vis::TraceStats stats;
    PhaseSummary summary;
    comm::Runtime rt(ranks);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lattice, part, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, flowParams());
      solver.run(120);
      vis::GhostedField ghosts(domain, comm, 2);
      ghosts.refresh(solver.macro(), comm);
      vis::StreamlineParams sp;
      sp.maxVertices = 600;
      comm.barrier();
      const auto sample = measurePhase(comm, [&] {
        vis::traceStreamlines(
            comm, ghosts, vis::discSeeds({0.3, 0, 0}, {1, 0, 0}, 0.8, 256),
            sp, &stats);
      });
      const auto s = summarizePhase(comm, sample);
      if (comm.rank() == 0) summary = s;
    });
    std::printf("%-8d %12llu %10llu %12.1f\n", ranks,
                static_cast<unsigned long long>(stats.migrations),
                static_cast<unsigned long long>(stats.rounds),
                static_cast<double>(summary.totalBytes) / 1e3);
  }
  std::printf("\nexpected shape: migrations/rounds grow with both seed and "
              "rank count\n(every cut a line crosses is a handoff) — the "
              "\"hard to parallelise\"\nrow of Table I.\n");
  return 0;
}
