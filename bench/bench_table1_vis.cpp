// Reproduces **Table I** — "Pros and cons of the visualisation techniques".
//
// The paper ranks volume rendering, line integrals, particle tracing and
// LIC qualitatively on communication cost, load balance and ease of
// parallelisation. Here each technique runs on the same developed aneurysm
// flow and the same decomposition, and the three columns are *measured*:
//
//   communication cost       -> total bytes + messages the technique moved
//   load balance             -> busy-time imbalance (max/mean across ranks)
//   ease of parallelisation  -> modeled parallel efficiency vs the 1-rank
//                               run of the same technique (postal model,
//                               see core/perf_model.hpp)
//
// Expected shape (paper): volume rendering low comm/easy; line integrals &
// particle tracing high comm/hard; LIC in between.
//
// Scale note: at exascale the data dwarfs any image, so the image-sized
// compositing traffic of volume rendering is "low". The bench keeps that
// regime by pairing a ~13k-site lattice with a fixed 96x96 image.

#include "common.hpp"
#include "vis/lic.hpp"
#include "vis/particles.hpp"
#include "vis/sampler.hpp"
#include "vis/streamlines.hpp"
#include "vis/volume.hpp"

namespace {

using namespace hemobench;

struct TechniqueResult {
  std::string name;
  PhaseSummary summary;
  double serialBusy = 0.0;
};

/// Run the four techniques on `ranks` ranks; returns per-technique
/// summaries (identical on every rank).
std::vector<TechniqueResult> runAll(const geometry::SparseLattice& lattice,
                                    int ranks) {
  const auto part = kwayPartition(lattice, ranks);
  std::vector<TechniqueResult> results;
  comm::Runtime rt(ranks);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, part, comm.rank());
    lb::SolverD3Q19 solver(domain, comm, flowParams());
    solver.run(120);  // develop the flow
    vis::GhostedField ghosts(domain, comm, 2);
    ghosts.refresh(solver.macro(), comm);

    vis::VolumeRenderOptions vro;
    vro.width = 96;
    vro.height = 96;
    vro.camera.position = {2.5, 0.8, 8.0};
    vro.camera.target = {2.5, 0.4, 0.0};
    vro.transfer = vis::TransferFunction::bloodFlow(0.f, 0.005f);

    const auto seeds = vis::discSeeds({0.4, 0, 0}, {1, 0, 0}, 0.7, 64);
    vis::StreamlineParams sp;
    sp.maxVertices = 600;

    vis::LicOptions lic;
    lic.axis = 2;
    lic.sliceIndex = lattice.dims().z / 2;

    std::vector<std::pair<std::string, std::function<void()>>> techniques;
    techniques.emplace_back("volume rendering", [&] {
      vis::renderVolume(comm, domain, solver.macro(), vro);
    });
    techniques.emplace_back("line integral", [&] {
      vis::traceStreamlines(comm, ghosts, seeds, sp);
    });
    techniques.emplace_back("particle tracing", [&] {
      vis::TracerSwarm swarm(ghosts);
      swarm.inject(comm, vis::discSeeds({0.4, 0, 0}, {1, 0, 0}, 0.7, 256));
      for (int s = 0; s < 120; ++s) swarm.advect(comm);
      swarm.gather(comm);
    });
    techniques.emplace_back("LIC", [&] {
      vis::computeLicSlice(comm, domain, solver.macro(), lic);
    });

    for (auto& [name, fn] : techniques) {
      comm.barrier();
      const auto sample = measurePhase(comm, fn);
      const auto summary = summarizePhase(comm, sample);
      if (comm.rank() == 0) results.push_back({name, summary, 0.0});
    }
  });
  return results;
}

}  // namespace

int main() {
  using namespace hemobench;
  const auto lattice = makeAneurysm(0.12);
  std::printf("workload: aneurysm vessel, %llu fluid sites\n",
              static_cast<unsigned long long>(lattice.numFluidSites()));

  BenchReport report("table1_vis");
  report.setParam("geometry", "aneurysm(voxel=0.12)");
  report.setParam("sites",
                  static_cast<std::int64_t>(lattice.numFluidSites()));

  const auto serial = runAll(lattice, 1);

  for (const int ranks : {4, 8}) {
    auto parallel = runAll(lattice, ranks);
    for (std::size_t i = 0; i < parallel.size(); ++i) {
      parallel[i].serialBusy = serial[i].summary.maxBusy;
    }

    char title[128];
    std::snprintf(title, sizeof title,
                  "TABLE I (measured), %d ranks — pros and cons of the "
                  "visualisation techniques", ranks);
    printHeader(title);
    std::printf("%-18s %12s %9s %12s %12s %10s\n", "technique", "comm KB",
                "msgs", "imbalance", "mod.speedup", "efficiency");
    for (const auto& r : parallel) {
      const double modeled = r.summary.modeledSeconds();
      const double speedup = modeled > 0.0 ? r.serialBusy / modeled : 0.0;
      std::printf("%-18s %12.1f %9llu %12.3f %12.2f %9.0f%%\n",
                  r.name.c_str(),
                  static_cast<double>(r.summary.totalBytes) / 1e3,
                  static_cast<unsigned long long>(r.summary.totalMessages),
                  r.summary.imbalance, speedup,
                  100.0 * speedup / ranks);
      auto& row = report.addRow(r.name + "/ranks=" + std::to_string(ranks));
      row.set("technique", r.name);
      row.set("ranks", static_cast<std::uint64_t>(ranks));
      row.set("commBytes", r.summary.totalBytes);
      row.set("commMsgs", r.summary.totalMessages);
      row.set("imbalance", r.summary.imbalance);
      row.set("modeledSeconds", modeled);
      row.set("modeledSpeedup", speedup);
      row.set("efficiency", speedup / ranks);
    }
    std::printf("\npaper's qualitative ranking for comparison:\n");
    std::printf("%-18s %12s %12s %14s\n", "technique", "comm cost",
                "load balance", "parallelise");
    std::printf("%-18s %12s %12s %14s\n", "volume rendering", "low",
                "can optimise", "easy");
    std::printf("%-18s %12s %12s %14s\n", "line integral", "high", "-",
                "hard");
    std::printf("%-18s %12s %12s %14s\n", "particle tracing", "high", "-",
                "hard");
    std::printf("%-18s %12s %12s %14s\n", "LIC", "medium", "good",
                "moderate");
  }
  report.write();
  return 0;
}
