// Ablations of the reproduction's own design choices (DESIGN.md calls
// these out): ghost-ring depth for particle methods, multilevel-refinement
// passes in the k-way partitioner, octree leaf granularity, and the
// collision-operator cost difference. Each table shows what the choice
// buys and what it costs.

#include "common.hpp"
#include "multires/octree.hpp"
#include "vis/sampler.hpp"
#include "vis/streamlines.hpp"

int main() {
  using namespace hemobench;
  const auto lattice = makeAneurysm(0.12);
  std::printf("workload: aneurysm vessel, %llu fluid sites\n",
              static_cast<unsigned long long>(lattice.numFluidSites()));

  // --- ghost-ring depth --------------------------------------------------------
  // rings=2 buys bitwise rank-invariant RK4 streamlines; what does the
  // wider halo cost per refresh?
  printHeader("Ablation: ghost-ring depth (8 ranks)");
  std::printf("%-8s %14s %16s %18s\n", "rings", "ghost sites",
              "refresh KB", "refresh KB/rank");
  for (const int rings : {1, 2, 3}) {
    const auto part = kwayPartition(lattice, 8);
    std::uint64_t ghosts = 0;
    PhaseSummary summary;
    comm::Runtime rt(8);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lattice, part, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, flowParams());
      solver.run(20);
      vis::GhostedField field(domain, comm, rings);
      const auto g = comm.allreduceSum(field.ghostCount());
      comm.barrier();
      const auto sample = measurePhase(
          comm, [&] { field.refresh(solver.macro(), comm); });
      const auto s = summarizePhase(comm, sample);
      if (comm.rank() == 0) {
        ghosts = g;
        summary = s;
      }
    });
    std::printf("%-8d %14llu %16.1f %18.1f\n", rings,
                static_cast<unsigned long long>(ghosts),
                static_cast<double>(summary.totalBytes) / 1e3,
                static_cast<double>(summary.maxRankBytes) / 1e3);
  }

  // --- k-way refinement passes ----------------------------------------------------
  printHeader("Ablation: k-way boundary-refinement passes (8 parts)");
  std::printf("%-8s %12s %12s %12s\n", "passes", "edge cut", "imbalance",
              "time ms");
  const auto graph = partition::buildSiteGraph(lattice);
  for (const int passes : {0, 1, 2, 4, 8}) {
    partition::MultilevelKWayPartitioner::Options opt;
    opt.refinementPasses = passes;
    partition::MultilevelKWayPartitioner kway(opt);
    WallTimer timer;
    const auto p = kway.partition(graph, 8);
    const double ms = timer.seconds() * 1e3;
    const auto m = partition::evaluatePartition(graph, p);
    std::printf("%-8d %12llu %12.3f %12.2f\n", passes,
                static_cast<unsigned long long>(m.edgeCut), m.imbalance, ms);
  }

  // --- octree leaf granularity -------------------------------------------------------
  printHeader("Ablation: octree leaf cell width (serial)");
  std::printf("%-12s %12s %14s %16s\n", "leaf voxels", "leaf nodes",
              "update ms", "leaf-level err");
  {
    partition::Partition part;
    part.numParts = 1;
    part.partOfSite.assign(lattice.numFluidSites(), 0);
    comm::Runtime rt(1);
    rt.run([&](comm::Communicator& comm) {
      (void)comm;
      lb::DomainMap domain(lattice, part, 0);
      std::vector<double> scalar(domain.numOwned());
      std::vector<Vec3d> u(domain.numOwned());
      for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
        const Vec3d w = lattice.siteWorld(domain.globalOf(l));
        scalar[l] = std::sin(w.x) * std::cos(w.y);
        u[l] = {scalar[l], 0, 0};
      }
      for (const int leafLog2 : {0, 1, 2}) {
        multires::FieldOctree tree(domain, leafLog2);
        WallTimer timer;
        for (int rep = 0; rep < 20; ++rep) tree.update(scalar, u);
        const double ms = timer.seconds() * 1e3 / 20;
        const double err =
            multires::levelError(tree, tree.leafLevel(), scalar);
        std::printf("%-12d %12zu %14.3f %16.4f\n", 1 << leafLog2,
                    tree.level(tree.leafLevel()).size(), ms, err);
      }
    });
  }

  // --- collision-operator cost --------------------------------------------------------
  printHeader("Ablation: collision operator cost (serial, 40 steps)");
  std::printf("%-22s %12s\n", "operator", "busy s");
  {
    partition::Partition part;
    part.numParts = 1;
    part.partOfSite.assign(lattice.numFluidSites(), 0);
    struct Case {
      const char* name;
      lb::LbParams params;
    };
    std::vector<Case> cases;
    cases.push_back({"BGK", flowParams()});
    {
      auto p = flowParams();
      p.collision = lb::LbParams::Collision::kTrt;
      cases.push_back({"TRT", p});
    }
    cases.push_back({"BGK + stress", flowParams(true)});
    for (const auto& c : cases) {
      comm::Runtime rt(1);
      double busy = 0.0;
      rt.run([&](comm::Communicator& comm) {
        lb::DomainMap domain(lattice, part, 0);
        lb::SolverD3Q19 solver(domain, comm, c.params);
        solver.run(5);
        const auto sample = measurePhase(comm, [&] { solver.run(40); });
        busy = sample.busySeconds;
      });
      std::printf("%-22s %12.4f\n", c.name, busy);
    }
  }
  std::printf("\nexpected shapes: ghost cost grows ~linearly with ring depth "
              "(rings=2 is\nthe price of deterministic tracing); most of the "
              "k-way cut improvement\narrives in the first passes; coarser "
              "octree leaves trade accuracy for\nupdate speed; TRT and the "
              "stress moment each add a modest collide cost.\n");
  return 0;
}
