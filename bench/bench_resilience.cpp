// Resilience-layer cost bench: what do the fault-tolerance features cost
// when nothing is failing — and what does recovery cost when it is? Sweeps
// on the aneurysm workload:
//
//   1. Checkpoint bandwidth vs stripe count {1, 2, 4, 8} on 8 ranks —
//      the v2 format's point is that striped leader writes scale the
//      commit, where v1 funnelled every blob through rank 0. Reports
//      write and restore wall time, effective MB/s, and bytes on disk.
//
//   2. Heartbeat overhead: solver MLUPS with the broker serving polling
//      clients, heartbeats off vs on (heartbeatEvery=1, the most
//      aggressive probing the broker supports). The probe path must be
//      noise — the §III resiliency machinery cannot perturb the solver.
//
//   3. MTTR: wall time from an injected rank kill to resume-ready, vs
//      checkpoint cadence {5, 10, 20}, disk vs diskless buddy restore,
//      decomposed into detect+agree / restore. Plus the work replayed
//      (steps lost since the last snapshot) — the cadence trade-off.
//
//   4. Steady-state recovery-machinery overhead: MLUPS with liveness
//      heartbeats alone, then buddy mirroring on top at cadence {10, 50},
//      vs all off. Liveness must be free; mirror cost is one blob
//      encode+CRC+ring-send amortised over the cadence (acceptance: <= 3%
//      at a production cadence).
//
// Emits BENCH_resilience.json.

#include <cstdio>
#include <filesystem>

#include "common.hpp"
#include "core/driver.hpp"
#include "core/recovery.hpp"
#include "lb/buddy.hpp"
#include "lb/checkpoint.hpp"
#include "serve/broker.hpp"
#include "serve/client.hpp"
#include "util/faultinject.hpp"

namespace {

using namespace hemobench;

constexpr int kRanks = 8;
constexpr int kWarmupSteps = 5;

struct CkptResult {
  double writeSeconds = 0.0;
  double restoreSeconds = 0.0;
  std::uint64_t bytes = 0;
};

CkptResult runCheckpoint(const geometry::SparseLattice& lattice,
                         const partition::Partition& part, int stripes) {
  const std::string dir = "/tmp/hemo_bench_resilience_ckpt";
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/" + lb::checkpointFileName(kWarmupSteps);

  CkptResult r;
  comm::Runtime rt(kRanks);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, part, comm.rank());
    lb::SolverD3Q19 solver(domain, comm, flowParams());
    solver.run(kWarmupSteps);

    comm.barrier();
    WallTimer writeTimer;
    const auto bytes = lb::writeCheckpoint(path, solver, comm, {stripes});
    comm.barrier();
    const double writeSeconds = writeTimer.seconds();

    lb::SolverD3Q19 fresh(domain, comm, flowParams());
    comm.barrier();
    WallTimer restoreTimer;
    const auto restored = lb::readCheckpoint(path, fresh, comm);
    comm.barrier();
    const double restoreSeconds = restoreTimer.seconds();

    if (comm.rank() == 0) {
      r.writeSeconds = writeSeconds;
      r.restoreSeconds = restoreSeconds;
      r.bytes = bytes;
      if (!restored.ok()) {
        std::printf("  !! restore failed: %s\n", restored.detail.c_str());
      }
    }
  });
  std::filesystem::remove_all(dir);
  return r;
}

double runHeartbeatConfig(const geometry::SparseLattice& lattice,
                          const partition::Partition& part, int numClients,
                          int heartbeatEvery, int steps) {
  serve::BrokerConfig bcfg;
  bcfg.heartbeatEvery = heartbeatEvery;
  // Passive clients must not get evicted mid-measurement — the bench
  // times sustained probing, not the eviction path.
  bcfg.missedHeartbeatLimit = 1 << 30;
  serve::SessionBroker broker(bcfg);
  std::vector<serve::ServeClient> clients;
  for (int i = 0; i < numClients; ++i) {
    clients.emplace_back(broker.connect());
    clients.back().subscribe(serve::StreamKind::kStatus, 10);
  }

  double mlups = 0.0;
  comm::Runtime rt(kRanks);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, part, comm.rank());
    core::DriverConfig cfg;
    cfg.lb = flowParams(true);
    cfg.computeWss = false;
    cfg.visEvery = 0;
    cfg.statusEvery = 0;
    core::SimulationDriver driver(domain, comm, cfg);
    driver.attachBroker(comm.rank() == 0 ? &broker : nullptr);

    comm.barrier();
    WallTimer wall;
    // Clients stay passive during the timed slice: the bounded outboxes
    // absorb unanswered probes, which is the worst case for broker-side
    // heartbeat work (every probe is composed and pushed, none acked).
    driver.run(steps);
    const double seconds = wall.seconds();
    if (comm.rank() == 0) {
      mlups = static_cast<double>(lattice.numFluidSites()) *
              static_cast<double>(steps) / seconds / 1e6;
    }
  });
  for (auto& c : clients) {
    while (c.pollEvent()) {
    }
  }
  return mlups;
}

double runSentinelConfig(const geometry::SparseLattice& lattice,
                         const partition::Partition& part, int checkEvery,
                         int steps) {
  double mlups = 0.0;
  comm::Runtime rt(kRanks);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, part, comm.rank());
    core::DriverConfig cfg;
    cfg.lb = flowParams(true);
    cfg.computeWss = false;
    cfg.visEvery = 0;
    cfg.statusEvery = 0;
    cfg.sentinel.checkEvery = checkEvery;
    core::SimulationDriver driver(domain, comm, cfg);

    comm.barrier();
    WallTimer wall;
    driver.run(steps);
    const double seconds = wall.seconds();
    if (comm.rank() == 0) {
      mlups = static_cast<double>(lattice.numFluidSites()) *
              static_cast<double>(steps) / seconds / 1e6;
    }
  });
  return mlups;
}

struct MttrResult {
  bool completed = false;
  double agreeSeconds = 0.0;
  double restoreSeconds = 0.0;
  double totalSeconds = 0.0;
  std::uint64_t restoredStep = 0;
  bool usedBuddy = false;
};

/// Kill world rank 2 at step `killStep` and recover through
/// ResilientRunner; returns the recovery event's timeline.
MttrResult runMttr(const geometry::SparseLattice& lattice, int cadence,
                   bool buddy, int killStep, int steps) {
  const std::string dir = "/tmp/hemo_bench_resilience_mttr";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  core::DriverConfig cfg;
  cfg.lb = flowParams();
  cfg.computeWss = false;
  cfg.visEvery = 0;
  cfg.statusEvery = 0;
  cfg.checkpointEvery = cadence;
  if (!buddy) cfg.checkpointDir = dir;

  core::RecoveryConfig rcfg;
  rcfg.liveness = {true, 2000, 5};
  rcfg.buddy = buddy;

  util::FaultScope scope(97);
  util::FaultRule rule;
  rule.site = util::FaultSite::kDriverStep;
  rule.action = util::FaultAction::kKill;
  rule.rank = 2;
  rule.afterHits = static_cast<std::uint64_t>(killStep - 1);
  rule.maxFires = 1;
  scope.rule(rule);

  partition::MultilevelKWayPartitioner kway;
  core::ResilientRunner runner(lattice, kway, cfg, rcfg);
  const auto result = runner.run(kRanks, steps);

  MttrResult r;
  r.completed = result.completed && result.events.size() == 1;
  if (r.completed) {
    const auto& ev = result.events[0];
    r.agreeSeconds = ev.agreeSeconds;
    r.restoreSeconds = ev.restoreSeconds;
    r.totalSeconds = ev.totalSeconds;
    r.restoredStep = ev.restoredStep;
    r.usedBuddy = ev.usedBuddy;
  }
  std::filesystem::remove_all(dir);
  return r;
}

/// Solver MLUPS with the recovery machinery staged in: liveness heartbeats +
/// bounded waits alone, then buddy mirroring on top (at the given cadence,
/// 0 = off), vs entirely off.
double runRecoveryOverheadConfig(const geometry::SparseLattice& lattice,
                                 const partition::Partition& part,
                                 bool liveness, int mirrorEvery, int steps) {
  lb::BuddyStore store;
  double mlups = 0.0;
  comm::Runtime rt(kRanks);
  if (liveness) rt.setLiveness({true, 2000, 5});
  comm::RunOptions opt;
  opt.tolerateRankDeath = liveness;
  rt.run(
      [&](comm::Communicator& comm) {
        lb::DomainMap domain(lattice, part, comm.rank());
        core::DriverConfig cfg;
        cfg.lb = flowParams(true);
        cfg.computeWss = false;
        cfg.visEvery = 0;
        cfg.statusEvery = 0;
        if (mirrorEvery > 0) {
          cfg.buddy.store = &store;
          cfg.buddy.mirrorEvery = mirrorEvery;
        }
        core::SimulationDriver driver(domain, comm, cfg);

        comm.barrier();
        WallTimer wall;
        driver.run(steps);
        const double seconds = wall.seconds();
        if (comm.rank() == 0) {
          mlups = static_cast<double>(lattice.numFluidSites()) *
                  static_cast<double>(steps) / seconds / 1e6;
        }
      },
      opt);
  return mlups;
}

}  // namespace

int main() {
  const auto lattice = makeAneurysm(0.1);
  const auto part = kwayPartition(lattice, kRanks);
  std::printf("workload: aneurysm vessel, %llu sites, %d ranks\n",
              static_cast<unsigned long long>(lattice.numFluidSites()),
              kRanks);

  BenchReport report("resilience");
  report.setParam("workload", std::string("aneurysm"));
  report.setParam("sites", static_cast<std::int64_t>(lattice.numFluidSites()));
  report.setParam("ranks", static_cast<std::int64_t>(kRanks));

  printHeader("R1: checkpoint commit bandwidth vs stripe count");
  std::printf("%-8s %12s %12s %12s %12s\n", "stripes", "size MB",
              "write MB/s", "restore MB/s", "write ms");
  for (const int stripes : {1, 2, 4, 8}) {
    const auto r = runCheckpoint(lattice, part, stripes);
    const double mb = static_cast<double>(r.bytes) / 1e6;
    std::printf("%-8d %12.2f %12.1f %12.1f %12.2f\n", stripes, mb,
                mb / r.writeSeconds, mb / r.restoreSeconds,
                r.writeSeconds * 1e3);

    auto& row = report.addRow("ckpt_stripes_" + std::to_string(stripes));
    row.set("stripes", static_cast<std::uint64_t>(stripes));
    row.set("bytes", r.bytes);
    row.set("writeSeconds", r.writeSeconds);
    row.set("restoreSeconds", r.restoreSeconds);
    row.set("writeMBps", mb / r.writeSeconds);
    row.set("restoreMBps", mb / r.restoreSeconds);
  }

  printHeader("R2: heartbeat probing overhead (8 polling clients)");
  const int steps = 40;
  std::printf("%-24s %12s\n", "config", "MLUPS");
  const double off = runHeartbeatConfig(lattice, part, 8, 0, steps);
  std::printf("%-24s %12.2f\n", "heartbeats off", off);
  const double on = runHeartbeatConfig(lattice, part, 8, 1, steps);
  std::printf("%-24s %12.2f  (%.1f%% of baseline)\n",
              "heartbeats every step", on, 100.0 * on / off);

  auto& rowOff = report.addRow("heartbeats_off");
  rowOff.set("heartbeatEvery", std::uint64_t{0});
  rowOff.set("mlups", off);
  auto& rowOn = report.addRow("heartbeats_on");
  rowOn.set("heartbeatEvery", std::uint64_t{1});
  rowOn.set("mlups", on);
  rowOn.set("fractionOfBaseline", on / off);

  printHeader("R3: MTTR — injected kill at step 23, recovery wall time");
  std::printf("%-8s %-6s %10s %10s %10s %10s %10s\n", "cadence", "mode",
              "agree ms", "restore ms", "total ms", "from step",
              "replayed");
  const int mttrSteps = 40;
  const int killStep = 23;
  for (const int cadence : {5, 10, 20}) {
    for (const bool buddy : {false, true}) {
      const auto r = runMttr(lattice, cadence, buddy, killStep, mttrSteps);
      if (!r.completed) {
        std::printf("%-8d %-6s %10s\n", cadence, buddy ? "buddy" : "disk",
                    "FAILED");
        continue;
      }
      const auto replayed =
          static_cast<std::uint64_t>(killStep) - r.restoredStep;
      std::printf("%-8d %-6s %10.1f %10.1f %10.1f %10llu %10llu\n", cadence,
                  buddy ? "buddy" : "disk", r.agreeSeconds * 1e3,
                  r.restoreSeconds * 1e3, r.totalSeconds * 1e3,
                  static_cast<unsigned long long>(r.restoredStep),
                  static_cast<unsigned long long>(replayed));

      auto& row = report.addRow(std::string("mttr_") +
                                (buddy ? "buddy" : "disk") + "_cadence_" +
                                std::to_string(cadence));
      row.set("cadence", static_cast<std::uint64_t>(cadence));
      row.set("buddy", static_cast<std::uint64_t>(buddy ? 1 : 0));
      row.set("agreeSeconds", r.agreeSeconds);
      row.set("restoreSeconds", r.restoreSeconds);
      row.set("totalSeconds", r.totalSeconds);
      row.set("restoredStep", r.restoredStep);
      row.set("stepsReplayed", replayed);
    }
  }

  printHeader("R4: recovery-machinery steady-state overhead");
  std::printf("%-32s %12s\n", "config", "MLUPS");
  const double machOff =
      runRecoveryOverheadConfig(lattice, part, false, 0, steps);
  std::printf("%-32s %12.2f\n", "liveness+buddy off", machOff);
  const double machLive =
      runRecoveryOverheadConfig(lattice, part, true, 0, steps);
  std::printf("%-32s %12.2f  (%.1f%% of baseline)\n", "liveness on", machLive,
              100.0 * machLive / machOff);
  auto& rowMachOff = report.addRow("recovery_machinery_off");
  rowMachOff.set("mlups", machOff);
  auto& rowMachLive = report.addRow("recovery_liveness_on");
  rowMachLive.set("mlups", machLive);
  rowMachLive.set("fractionOfBaseline", machLive / machOff);
  for (const int mirrorEvery : {10, 50}) {
    const double machOn =
        runRecoveryOverheadConfig(lattice, part, true, mirrorEvery, steps);
    std::printf("liveness on, buddy mirror/%-6d %12.2f  (%.1f%% of "
                "baseline)\n",
                mirrorEvery, machOn, 100.0 * machOn / machOff);
    auto& rowMachOn = report.addRow("recovery_machinery_on_mirror_" +
                                    std::to_string(mirrorEvery));
    rowMachOn.set("mirrorEvery", static_cast<std::uint64_t>(mirrorEvery));
    rowMachOn.set("mlups", machOn);
    rowMachOn.set("fractionOfBaseline", machOn / machOff);
  }

  printHeader("R5: stability-sentinel overhead (per-window reduction)");
  std::printf("%-24s %12s\n", "config", "MLUPS");
  const double sentinelOff = runSentinelConfig(lattice, part, 0, steps);
  std::printf("%-24s %12.2f\n", "sentinel off", sentinelOff);
  const double sentinelOn = runSentinelConfig(lattice, part, 10, steps);
  std::printf("%-24s %12.2f  (%.1f%% of baseline)\n",
              "sentinel every 10", sentinelOn,
              100.0 * sentinelOn / sentinelOff);

  auto& rowSentOff = report.addRow("sentinel_off");
  rowSentOff.set("checkEvery", std::uint64_t{0});
  rowSentOff.set("mlups", sentinelOff);
  auto& rowSentOn = report.addRow("sentinel_on");
  rowSentOn.set("checkEvery", std::uint64_t{10});
  rowSentOn.set("mlups", sentinelOn);
  rowSentOn.set("fractionOfBaseline", sentinelOn / sentinelOff);

  report.write();
  std::printf("\nexpected shape: write bandwidth rises with stripe count "
              "(concurrent leader\nwrites) until the filesystem saturates; "
              "heartbeat probing, liveness tracking\nand the sentinel's "
              "per-window reduction all stay within noise of their off\n"
              "baselines; buddy mirror overhead is one blob encode+CRC+ring-"
              "send amortised\nover the cadence, shrinking toward noise as "
              "the cadence grows; buddy MTTR\nbeats disk at every cadence, "
              "and replayed work scales with cadence.\n");
  return 0;
}
