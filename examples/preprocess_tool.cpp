// Pre-processing tool — the §IV.B chain as a standalone utility.
//
//   1. Voxelise a bifurcation vessel and write the two-level .sgmy file.
//   2. Read the coarse header back (block-table-only access).
//   3. Demonstrate the parallel read: a subset of reading cores fetches
//      payloads and redistributes them to the owners, for several reader
//      counts, printing the file-I/O vs distribution-communication split.
//   4. Compare all five partitioners on the geometry.
//
// Run:  ./preprocess_tool   (writes bifurcation.sgmy in the CWD)

#include <cstdio>

#include "comm/runtime.hpp"
#include "core/preprocess.hpp"
#include "geometry/parallel_reader.hpp"
#include "geometry/sgmy.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"

int main() {
  using namespace hemo;

  // 1. Voxelise and write.
  geometry::VoxelizeOptions vox;
  vox.voxelSize = 0.15;
  const auto lattice = geometry::voxelize(
      geometry::makeBifurcation(4.0, 1.0, 4.0, 0.75, 0.5), vox);
  const std::string path = "bifurcation.sgmy";
  if (!geometry::writeSgmy(path, lattice)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s: %llu fluid sites, %zu non-empty blocks\n",
              path.c_str(),
              static_cast<unsigned long long>(lattice.numFluidSites()),
              lattice.numNonEmptyBlocks());

  // 2. Header-only read.
  const auto header = geometry::readSgmyHeader(path);
  std::printf("header: dims %dx%dx%d, %u iolets, %llu sites from the block "
              "table alone\n",
              header.dims.x, header.dims.y, header.dims.z,
              static_cast<unsigned>(header.iolets.size()),
              static_cast<unsigned long long>(header.totalFluidSites()));

  // 3. Parallel read with varying reading-core counts.
  std::printf("\nparallel read, 8 ranks (file I/O vs redistribution):\n");
  std::printf("%-10s %14s %16s %14s\n", "readers", "disk bytes",
              "network bytes", "messages");
  for (const int readers : {1, 2, 4, 8}) {
    comm::Runtime rt(8);
    std::uint64_t disk = 0;
    rt.run([&](comm::Communicator& comm) {
      const auto result = geometry::readSgmyDistributed(comm, path, readers);
      const auto local = comm.allreduceSum(result.bytesReadFromDisk);
      if (comm.rank() == 0) disk = local;
    });
    const auto io = rt.totalCounters().of(comm::Traffic::kIo);
    std::printf("%-10d %14llu %16llu %14llu\n", readers,
                static_cast<unsigned long long>(disk),
                static_cast<unsigned long long>(io.bytesSent),
                static_cast<unsigned long long>(io.messagesSent));
  }

  // 4. Partitioner comparison.
  std::printf("\npartitioner comparison, 8 parts:\n");
  std::printf("%-8s %10s %10s %12s %12s %10s\n", "name", "imbalance",
              "edge cut", "boundary", "comm vol", "time ms");
  for (const char* name :
       {"block", "sfc", "hilbert", "rcb", "greedy", "kway"}) {
    core::PreprocessConfig cfg;
    cfg.partitioner = name;
    const auto report = core::preprocess(lattice, 8, cfg);
    std::printf("%-8s %10.3f %10llu %12llu %12llu %10.2f\n", name,
                report.metrics.imbalance,
                static_cast<unsigned long long>(report.metrics.edgeCut),
                static_cast<unsigned long long>(report.metrics.boundaryVertices),
                static_cast<unsigned long long>(report.metrics.commVolume),
                report.seconds * 1e3);
  }
  return 0;
}
