// Quickstart: the minimal HemoFlow workflow.
//
//   1. Build a vessel geometry analytically and voxelise it.
//   2. Pre-process: partition the sparse lattice for 4 ranks.
//   3. Run the lattice-Boltzmann simulation with the in situ pipeline
//      attached (volume rendering every 25 steps).
//   4. Save the final frame as a PPM image and print flow statistics.
//
// Run:  ./quickstart   (writes quickstart_frame.ppm in the CWD)

#include <cstdio>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "core/preprocess.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "io/ppm.hpp"

int main() {
  using namespace hemo;

  // 1. Geometry: a straight artery segment, 6 mm long, 1 mm radius,
  //    voxelised at 0.15 mm.
  geometry::VoxelizeOptions vox;
  vox.voxelSize = 0.15;
  const auto lattice =
      geometry::voxelize(geometry::makeStraightTube(6.0, 1.0), vox);
  std::printf("lattice: %llu fluid sites in %d x %d x %d box (%.1f%% fluid)\n",
              static_cast<unsigned long long>(lattice.numFluidSites()),
              lattice.dims().x, lattice.dims().y, lattice.dims().z,
              100.0 * lattice.fluidFraction());

  // 2. Pre-processing: multilevel k-way decomposition for 4 ranks.
  const int ranks = 4;
  core::PreprocessConfig pre;
  pre.partitioner = "kway";
  const auto report = core::preprocess(lattice, ranks, pre);
  std::printf("partition (%s): imbalance %.3f, edge cut %llu\n",
              report.partitionerName.c_str(), report.metrics.imbalance,
              static_cast<unsigned long long>(report.metrics.edgeCut));

  // 3. Simulate with in situ rendering.
  comm::Runtime rt(ranks);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, report.partition, comm.rank());

    core::DriverConfig cfg;
    cfg.lb.tau = 0.8;
    cfg.lb.bodyForce = {1e-5, 0, 0};  // pressure-gradient-like driving
    cfg.lb.computeStress = true;
    cfg.visEvery = 25;
    cfg.statusEvery = 0;
    cfg.plannedSteps = 200;
    cfg.render.width = 320;
    cfg.render.height = 240;
    cfg.render.camera.position = {3.0, 1.2, 7.0};
    cfg.render.camera.target = {3.0, 0.0, 0.0};
    cfg.render.transfer = vis::TransferFunction::bloodFlow(0.f, 0.012f);

    core::SimulationDriver driver(domain, comm, cfg);
    driver.run(200);

    const auto status = driver.computeStatus();
    if (comm.rank() == 0) {
      std::printf("after %llu steps: mass %.1f, max speed %.5f (lattice), "
                  "imbalance %.2f, consistency %s\n",
                  static_cast<unsigned long long>(status.step),
                  status.totalMass, status.maxSpeed, status.loadImbalance,
                  status.consistencyOk ? "OK" : "VIOLATED");
      const auto& img = driver.lastOutputs().volumeImage;
      if (img.numPixels() > 0 &&
          io::writePpm("quickstart_frame.ppm", img.width(), img.height(),
                       img.toRgb8())) {
        std::printf("wrote quickstart_frame.ppm (%dx%d)\n", img.width(),
                    img.height());
      }
    }
  });

  // Communication accounting — what the in situ design is about.
  const auto halo = rt.totalCounters().of(comm::Traffic::kHalo);
  const auto vis = rt.totalCounters().of(comm::Traffic::kVis);
  std::printf("traffic: halo %.2f MB in %llu msgs, vis %.2f MB in %llu msgs\n",
              static_cast<double>(halo.bytesSent) / 1e6,
              static_cast<unsigned long long>(halo.messagesSent),
              static_cast<double>(vis.bytesSent) / 1e6,
              static_cast<unsigned long long>(vis.messagesSent));
  return 0;
}
