// Computational steering session — closing the loop (paper Fig 2, §IV.C.3).
//
// A scripted "scientist" drives a live simulation over the steering
// channel: watches status reports, moves the camera, requests frames,
// drills into a region of interest, changes a physical parameter
// (inlet pressure) mid-run, pauses to inspect, and finally terminates.
// Every client action and simulation response is printed as a transcript.
//
// Run:  ./steering_session   (writes steering_frame_*.ppm)

#include <cstdio>
#include <thread>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "core/preprocess.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "io/ppm.hpp"
#include "steer/server.hpp"

int main() {
  using namespace hemo;

  geometry::VoxelizeOptions vox;
  vox.voxelSize = 0.2;
  const auto lattice = geometry::voxelize(
      geometry::makeAneurysmVessel(5.0, 1.0, 1.1), vox);
  core::PreprocessConfig pre;
  const auto report = core::preprocess(lattice, 4, pre);

  auto [clientEnd, serverEnd] = comm::makeChannelPair();

  // --- the scripted user -----------------------------------------------------
  std::thread user([clientEnd = clientEnd]() mutable {
    steer::SteeringClient client(clientEnd);
    auto say = [](const char* msg) { std::printf("[client] %s\n", msg); };
    steer::Command c;

    say("requesting status...");
    c.type = steer::MsgType::kRequestStatus;
    client.send(c);
    if (auto s = client.awaitStatus()) {
      std::printf("[client] status: step %llu, %llu sites, mass %.1f, "
                  "eta %.1fs, consistency %s\n",
                  static_cast<unsigned long long>(s->step),
                  static_cast<unsigned long long>(s->totalSites),
                  s->totalMass, s->etaSeconds,
                  s->consistencyOk ? "OK" : "BAD");
    }

    say("setting viewpoint above the aneurysm dome");
    c = {};
    c.type = steer::MsgType::kSetCamera;
    c.camera.position = {2.5, 2.5, 7.0};
    c.camera.target = {2.5, 0.8, 0.0};
    client.send(c);

    say("requesting a frame");
    c = {};
    c.type = steer::MsgType::kRequestFrame;
    client.send(c);
    if (auto f = client.awaitImage()) {
      io::writePpm("steering_frame_1.ppm", f->width, f->height, f->rgb);
      std::printf("[client] got %dx%d frame at step %llu -> "
                  "steering_frame_1.ppm\n",
                  f->width, f->height,
                  static_cast<unsigned long long>(f->step));
    }

    say("raising inlet pressure (steering a simulation parameter)");
    c = {};
    c.type = steer::MsgType::kSetIoletDensity;
    c.ioletId = 0;
    c.value = 1.006;
    client.send(c);

    say("drilling into the dome region (multires ROI)");
    c = {};
    c.type = steer::MsgType::kSetRoi;
    c.roi = {{8, 8, 0}, {28, 32, 24}};
    c.roiLevel = 3;
    client.send(c);
    if (auto roi = client.awaitRoi()) {
      std::printf("[client] ROI level %d: %zu octree nodes at step %llu\n",
                  roi->level, roi->nodes.size(),
                  static_cast<unsigned long long>(roi->step));
    }

    say("asking for the mean WSS over the dome region only");
    c = {};
    c.type = steer::MsgType::kRequestObservable;
    c.observable = static_cast<std::uint8_t>(steer::ObservableKind::kMeanWss);
    c.roi = {{8, 8, 0}, {28, 32, 24}};
    client.send(c);
    if (auto obs = client.awaitObservable()) {
      std::printf("[client] mean WSS in ROI: %.3e over %llu wall sites "
                  "(step %llu)\n",
                  obs->value,
                  static_cast<unsigned long long>(obs->siteCount),
                  static_cast<unsigned long long>(obs->step));
    }

    say("pausing the simulation for a closer look");
    c = {};
    c.type = steer::MsgType::kPause;
    client.send(c);
    c = {};
    c.type = steer::MsgType::kRequestStatus;
    client.send(c);
    if (auto s = client.awaitStatus()) {
      std::printf("[client] paused at step %llu (paused=%d)\n",
                  static_cast<unsigned long long>(s->step), s->paused);
    }

    say("resuming");
    c = {};
    c.type = steer::MsgType::kResume;
    client.send(c);

    say("one more frame after the pressure change");
    c = {};
    c.type = steer::MsgType::kRequestFrame;
    client.send(c);
    if (auto f = client.awaitImage()) {
      io::writePpm("steering_frame_2.ppm", f->width, f->height, f->rgb);
      std::printf("[client] got frame at step %llu -> steering_frame_2.ppm\n",
                  static_cast<unsigned long long>(f->step));
    }

    say("terminating the run");
    c = {};
    c.type = steer::MsgType::kTerminate;
    client.send(c);
  });

  // --- the simulation ---------------------------------------------------------
  comm::Runtime rt(4);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, report.partition, comm.rank());
    core::DriverConfig cfg;
    cfg.lb.tau = 0.8;
    cfg.lb.computeStress = true;
    cfg.visEvery = 0;
    cfg.statusEvery = 0;
    cfg.plannedSteps = 100000;
    cfg.render.width = 256;
    cfg.render.height = 192;
    cfg.render.transfer = vis::TransferFunction::bloodFlow(0.f, 0.02f);
    core::SimulationDriver driver(
        domain, comm, cfg,
        comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    const int executed = driver.run(100000000);
    if (comm.rank() == 0) {
      std::printf("[sim] terminated by client after %d steps; final inlet "
                  "density %.4f, tau %.2f\n",
                  executed, driver.solver().ioletDensity(0),
                  driver.solver().params().tau);
    }
  });
  user.join();

  const auto steerTraffic = rt.totalCounters().of(comm::Traffic::kSteer);
  std::printf("steering fan-out traffic: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(steerTraffic.messagesSent),
              static_cast<unsigned long long>(steerTraffic.bytesSent));
  return 0;
}
