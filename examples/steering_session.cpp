// Computational steering session — closing the loop (paper Fig 2, §IV.C.3).
//
// A scripted "scientist" drives a live simulation over the steering
// channel: watches status reports, moves the camera, requests frames,
// drills into a region of interest, changes a physical parameter
// (inlet pressure) mid-run, pauses to inspect, and finally terminates.
// Every client action and simulation response is printed as a transcript.
//
// The session runs through the multi-client serving broker: alongside the
// steering scientist, `--clients N` (default 2) read-only observers
// subscribe to the image and status streams — half of them negotiate the
// RLE wire codec — and passively consume the fan-out. The broker renders
// each due frame once and serves it to everyone from the shared cache.
//
// Run:  ./steering_session [--clients N]   (writes steering_frame_*.ppm)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "core/preprocess.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "io/ppm.hpp"
#include "serve/broker.hpp"
#include "serve/client.hpp"
#include "steer/server.hpp"

int main(int argc, char** argv) {
  using namespace hemo;

  int numObservers = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      numObservers = std::atoi(argv[i + 1]);
    }
  }

  geometry::VoxelizeOptions vox;
  vox.voxelSize = 0.2;
  const auto lattice = geometry::voxelize(
      geometry::makeAneurysmVessel(5.0, 1.0, 1.1), vox);
  core::PreprocessConfig pre;
  const auto report = core::preprocess(lattice, 4, pre);

  serve::SessionBroker broker;

  // --- the scripted user -----------------------------------------------------
  // The steering scientist is just one more broker client: the classic
  // SteeringClient speaks the same wire protocol, so it plugs straight
  // into a broker-side channel end.
  std::thread user([clientEnd = broker.connect()]() mutable {
    steer::SteeringClient client(clientEnd);
    auto say = [](const char* msg) { std::printf("[client] %s\n", msg); };
    steer::Command c;

    say("requesting status...");
    c.type = steer::MsgType::kRequestStatus;
    client.send(c);
    if (auto s = client.awaitStatus()) {
      std::printf("[client] status: step %llu, %llu sites, mass %.1f, "
                  "eta %.1fs, consistency %s\n",
                  static_cast<unsigned long long>(s->step),
                  static_cast<unsigned long long>(s->totalSites),
                  s->totalMass, s->etaSeconds,
                  s->consistencyOk ? "OK" : "BAD");
    }

    say("setting viewpoint above the aneurysm dome");
    c = {};
    c.type = steer::MsgType::kSetCamera;
    c.camera.position = {2.5, 2.5, 7.0};
    c.camera.target = {2.5, 0.8, 0.0};
    client.send(c);

    say("requesting a frame");
    c = {};
    c.type = steer::MsgType::kRequestFrame;
    client.send(c);
    if (auto f = client.awaitImage()) {
      io::writePpm("steering_frame_1.ppm", f->width, f->height, f->rgb);
      std::printf("[client] got %dx%d frame at step %llu -> "
                  "steering_frame_1.ppm\n",
                  f->width, f->height,
                  static_cast<unsigned long long>(f->step));
    }

    say("raising inlet pressure (steering a simulation parameter)");
    c = {};
    c.type = steer::MsgType::kSetIoletDensity;
    c.ioletId = 0;
    c.value = 1.006;
    client.send(c);

    say("drilling into the dome region (multires ROI)");
    c = {};
    c.type = steer::MsgType::kSetRoi;
    c.roi = {{8, 8, 0}, {28, 32, 24}};
    c.roiLevel = 3;
    client.send(c);
    if (auto roi = client.awaitRoi()) {
      std::printf("[client] ROI level %d: %zu octree nodes at step %llu\n",
                  roi->level, roi->nodes.size(),
                  static_cast<unsigned long long>(roi->step));
    }

    say("asking for the mean WSS over the dome region only");
    c = {};
    c.type = steer::MsgType::kRequestObservable;
    c.observable = static_cast<std::uint8_t>(steer::ObservableKind::kMeanWss);
    c.roi = {{8, 8, 0}, {28, 32, 24}};
    client.send(c);
    if (auto obs = client.awaitObservable()) {
      std::printf("[client] mean WSS in ROI: %.3e over %llu wall sites "
                  "(step %llu)\n",
                  obs->value,
                  static_cast<unsigned long long>(obs->siteCount),
                  static_cast<unsigned long long>(obs->step));
    }

    say("pausing the simulation for a closer look");
    c = {};
    c.type = steer::MsgType::kPause;
    client.send(c);
    c = {};
    c.type = steer::MsgType::kRequestStatus;
    client.send(c);
    if (auto s = client.awaitStatus()) {
      std::printf("[client] paused at step %llu (paused=%d)\n",
                  static_cast<unsigned long long>(s->step), s->paused);
    }

    say("resuming");
    c = {};
    c.type = steer::MsgType::kResume;
    client.send(c);

    say("one more frame after the pressure change");
    c = {};
    c.type = steer::MsgType::kRequestFrame;
    client.send(c);
    if (auto f = client.awaitImage()) {
      io::writePpm("steering_frame_2.ppm", f->width, f->height, f->rgb);
      std::printf("[client] got frame at step %llu -> steering_frame_2.ppm\n",
                  static_cast<unsigned long long>(f->step));
    }

    say("terminating the run");
    c = {};
    c.type = steer::MsgType::kTerminate;
    client.send(c);
  });

  // --- the read-only observers ------------------------------------------------
  // Passive consumers of the serving plane: they subscribe to the image
  // and status streams and count what arrives until the broker closes.
  // Odd observers negotiate the RLE image codec.
  std::vector<std::thread> observers;
  std::vector<int> framesSeen(static_cast<std::size_t>(
      std::max(0, numObservers)));
  for (int i = 0; i < numObservers; ++i) {
    observers.emplace_back([&, i, end = broker.connect()]() mutable {
      serve::ServeClient observer(std::move(end));
      if (i % 2 == 1) {
        serve::CodecConfig codec;
        codec.rleImage = true;
        observer.setCodec(codec);
      }
      observer.subscribe(serve::StreamKind::kImage, 2);
      observer.subscribe(serve::StreamKind::kStatus, 5);
      while (auto event = observer.nextEvent()) {
        if (event->type == steer::MsgType::kImageFrame ||
            event->type == steer::MsgType::kCodedImage) {
          ++framesSeen[static_cast<std::size_t>(i)];
        }
      }
    });
  }

  // --- the simulation ---------------------------------------------------------
  comm::Runtime rt(4);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, report.partition, comm.rank());
    core::DriverConfig cfg;
    cfg.lb.tau = 0.8;
    cfg.lb.computeStress = true;
    cfg.visEvery = 0;
    cfg.statusEvery = 0;
    cfg.plannedSteps = 100000;
    cfg.render.width = 256;
    cfg.render.height = 192;
    cfg.render.transfer = vis::TransferFunction::bloodFlow(0.f, 0.02f);
    core::SimulationDriver driver(domain, comm, cfg);
    driver.attachBroker(comm.rank() == 0 ? &broker : nullptr);
    const int executed = driver.run(100000000);
    if (comm.rank() == 0) {
      std::printf("[sim] terminated by client after %d steps; final inlet "
                  "density %.4f, tau %.2f\n",
                  executed, driver.solver().ioletDensity(0),
                  driver.solver().params().tau);
      broker.closeAll();
    }
  });
  user.join();
  for (auto& t : observers) t.join();

  for (int i = 0; i < numObservers; ++i) {
    std::printf("[observer %d] %d image frames received (%s codec)\n", i,
                framesSeen[static_cast<std::size_t>(i)],
                i % 2 == 1 ? "RLE" : "no");
  }
  const auto& stats = broker.stats();
  std::printf("serving: %d clients, %llu frames served, cache %llu hits / "
              "%llu misses, %llu wire bytes (%llu raw)\n",
              broker.numClients(),
              static_cast<unsigned long long>(stats.framesSent),
              static_cast<unsigned long long>(stats.cacheHits),
              static_cast<unsigned long long>(stats.cacheMisses),
              static_cast<unsigned long long>(stats.wireBytes),
              static_cast<unsigned long long>(stats.rawBytes));
  const auto steerTraffic = rt.totalCounters().of(comm::Traffic::kSteer);
  std::printf("steering fan-out traffic: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(steerTraffic.messagesSent),
              static_cast<unsigned long long>(steerTraffic.bytesSent));
  return 0;
}
