// Aneurysm in situ analysis — the paper's motivating scenario.
//
// Simulates pressure-driven flow through a parent vessel with a saccular
// aneurysm and runs the full in situ post-processing suite on the live
// fields:
//   * wall shear stress statistics (rupture-risk observable),
//   * streamlines seeded across the inlet, rendered over a volume image,
//   * a LIC slice through the aneurysm mid-plane,
//   * the multiresolution context/detail drill-down of §V.
//
// The whole run is traced: every rank records collide/stream/halo/vis spans
// into its telemetry ring, merged at the end into aneurysm_trace.json —
// load it in chrome://tracing or https://ui.perfetto.dev to see the four
// ranks' timelines side by side.
//
// Two read-only observer clients watch the run through the serving broker:
// both subscribe to the image stream (one negotiating the RLE wire codec),
// so each periodic render is produced once and fanned out from the shared
// frame cache.
//
// Run:  ./aneurysm_insitu   (writes aneurysm_volume.ppm, aneurysm_lic.pgm,
//                            aneurysm_trace.json)

#include <cstdio>
#include <thread>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "core/preprocess.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "io/ppm.hpp"
#include "io/vtk.hpp"
#include "lb/wss.hpp"
#include "multires/roi.hpp"
#include "serve/broker.hpp"
#include "serve/client.hpp"
#include "vis/lic.hpp"
#include "vis/particles.hpp"

int main() {
  using namespace hemo;

  geometry::VoxelizeOptions vox;
  vox.voxelSize = 0.16;
  const auto lattice = geometry::voxelize(
      geometry::makeAneurysmVessel(6.0, 1.0, 1.3, 0.4), vox);
  std::printf("aneurysm vessel: %llu fluid sites\n",
              static_cast<unsigned long long>(lattice.numFluidSites()));

  const int ranks = 4;
  core::PreprocessConfig pre;
  pre.partitioner = "kway";
  const auto report = core::preprocess(lattice, ranks, pre);

  // Two passive observers on the serving plane: both watch the image
  // stream every 100 steps; the second negotiates the RLE codec. The
  // broker renders each due frame once and serves both from its cache.
  serve::SessionBroker broker;
  int observerFrames[2] = {0, 0};
  std::thread observerThreads[2];
  for (int i = 0; i < 2; ++i) {
    observerThreads[i] = std::thread([&, i, end = broker.connect()]() mutable {
      serve::ServeClient observer(std::move(end));
      if (i == 1) {
        serve::CodecConfig codec;
        codec.rleImage = true;
        observer.setCodec(codec);
      }
      observer.subscribe(serve::StreamKind::kImage, 100);
      while (auto event = observer.nextEvent()) {
        if (event->type == steer::MsgType::kImageFrame ||
            event->type == steer::MsgType::kCodedImage) {
          ++observerFrames[i];
        }
      }
    });
  }

  comm::Runtime rt(ranks);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, report.partition, comm.rank());

    core::DriverConfig cfg;
    cfg.lb.tau = 0.8;
    cfg.lb.computeStress = true;
    cfg.visEvery = 0;  // we run the pipeline manually at the end
    cfg.statusEvery = 0;
    cfg.render.width = 400;
    cfg.render.height = 300;
    cfg.render.camera.position = {3.0, 1.2, 8.5};
    cfg.render.camera.target = {3.0, 0.8, 0.0};
    cfg.render.transfer = vis::TransferFunction::bloodFlow(0.f, 0.02f);
    cfg.streamSeeds = vis::discSeeds({0.3, 0, 0}, {1, 0, 0}, 0.8, 24);
    cfg.enableLic = true;
    cfg.lic.axis = 2;
    cfg.lic.sliceIndex = lattice.dims().z / 2;

    core::SimulationDriver driver(domain, comm, cfg);
    driver.attachBroker(comm.rank() == 0 ? &broker : nullptr);
    // Drive with a pressure drop between inlet and outlet.
    driver.solver().setIoletDensity(0, 1.004);
    driver.solver().setIoletDensity(1, 0.996);
    driver.run(600);
    driver.runPipelineNow();

    const auto& out = driver.lastOutputs();
    if (comm.rank() == 0) {
      std::printf("flow:  mean speed %.5f, max speed %.5f (lattice units)\n",
                  out.meanSpeed, out.maxSpeed);
      std::printf("wss:   mean %.3e, max %.3e (lattice units)\n", out.meanWss,
                  out.maxWss);
      std::printf("lines: %zu streamlines traced\n", out.streamlines.size());
      const auto& img = out.volumeImage;
      if (io::writePpm("aneurysm_volume.ppm", img.width(), img.height(),
                       img.toRgb8())) {
        std::printf("wrote aneurysm_volume.ppm\n");
      }
      if (out.lic.width > 0 &&
          io::writePgm("aneurysm_lic.pgm", out.lic.width, out.lic.height,
                       out.lic.toGray8())) {
        std::printf("wrote aneurysm_lic.pgm\n");
      }
    }

    // Path-lines through the unsteady flow: tracers advected in situ for
    // 200 more steps, positions recorded each step, exported as VTK
    // polylines alongside the WSS samples as a VTK point cloud — ready for
    // ParaView/VisIt.
    {
      vis::GhostedField ghosts(domain, comm, 2);
      ghosts.refresh(driver.solver().macro(), comm);
      vis::TracerSwarm swarm(ghosts);
      swarm.inject(comm, vis::discSeeds({0.3, 0, 0}, {1, 0, 0}, 0.7, 12));
      vis::PathlineRecorder recorder;
      recorder.record(swarm);
      for (int s = 0; s < 200; ++s) {
        driver.solver().step();
        ghosts.refresh(driver.solver().macro(), comm);
        swarm.advect(comm);
        recorder.record(swarm);
      }
      const auto pathlines = recorder.gather(comm);
      const auto wss =
          lb::computeWallShearStress(domain, driver.solver().macro());
      // WSS samples from all ranks to the master for export.
      std::vector<double> rows;
      for (const auto& w : wss) {
        rows.insert(rows.end(), {w.worldPos.x, w.worldPos.y, w.worldPos.z,
                                 w.wss});
      }
      const auto allWss = comm.gatherVec(rows, 0);
      if (comm.rank() == 0) {
        std::vector<std::vector<Vec3f>> lines;
        for (const auto& p : pathlines) lines.push_back(p.vertices);
        io::writeVtkPolylines("aneurysm_pathlines.vtk", lines);
        std::vector<Vec3d> points;
        io::VtkScalars wssField{"wss", {}};
        for (const auto& blob : allWss) {
          for (std::size_t i = 0; i < blob.size(); i += 4) {
            points.push_back({blob[i], blob[i + 1], blob[i + 2]});
            wssField.values.push_back(blob[i + 3]);
          }
        }
        io::writeVtkPoints("aneurysm_wss.vtk", points, {wssField});
        std::printf("wrote aneurysm_pathlines.vtk (%zu lines) and "
                    "aneurysm_wss.vtk (%zu samples)\n",
                    lines.size(), points.size());
      }
    }

    // Multi-resolution drill-down into the aneurysm dome (§V): coarse
    // context first, then ROI refinement level by level.
    multires::FieldOctree octree(domain, 0);
    std::vector<double> speed(domain.numOwned());
    for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
      speed[l] = driver.solver().macro().u[l].norm();
    }
    octree.update(speed, driver.solver().macro().u);
    // The dome sits above the vessel axis around x = 3 mm.
    const double h = lattice.voxelSize();
    const Vec3d domeLo{2.0, 0.8, -1.0}, domeHi{4.0, 3.0, 1.0};
    const BoxI roi{((domeLo - lattice.origin()) / h).cast<int>(),
                   ((domeHi - lattice.origin()) / h).cast<int>()};
    const auto drill = multires::progressiveDrilldown(
        comm, octree, 2, octree.leafLevel(), roi);
    if (comm.rank() == 0) {
      std::printf("multires drill-down (context level 2 -> leaves in ROI):\n");
      for (std::size_t stage = 0; stage < drill.nodesPerStage.size();
           ++stage) {
        std::printf("  stage %zu: %zu nodes, %.1f KB moved\n", stage,
                    drill.nodesPerStage[stage],
                    static_cast<double>(drill.bytesPerStage[stage]) / 1e3);
      }
      const std::uint64_t fullBytes =
          lattice.numFluidSites() * sizeof(multires::OctreeNode);
      std::printf("  (full-resolution field would be %.1f KB)\n",
                  static_cast<double>(fullBytes) / 1e3);
    }
    if (comm.rank() == 0) broker.closeAll();
  });
  for (auto& t : observerThreads) t.join();

  const auto& stats = broker.stats();
  std::printf("observers: %d plain frames, %d RLE frames; cache %llu hits / "
              "%llu misses, %llu wire bytes (%llu raw)\n",
              observerFrames[0], observerFrames[1],
              static_cast<unsigned long long>(stats.cacheHits),
              static_cast<unsigned long long>(stats.cacheMisses),
              static_cast<unsigned long long>(stats.wireBytes),
              static_cast<unsigned long long>(stats.rawBytes));

  // Merge the four per-rank trace rings into one Chrome-trace document.
  if (rt.writeChromeTrace("aneurysm_trace.json")) {
    std::printf("wrote aneurysm_trace.json (open in chrome://tracing or "
                "ui.perfetto.dev)\n");
  }
  std::printf("rank 0 metrics: %s\n",
              rt.telemetry(0).metrics().toJson().c_str());
  return 0;
}
