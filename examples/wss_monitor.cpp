// WSS hotspot monitoring — the paper's motivating clinical scenario:
// "real-time risk assessment of cerebral aneurysm rupture" (§I).
//
// Simulates pulsatile-like flow through an aneurysm vessel (the inlet
// pressure is modulated over time), and in situ per cycle:
//   * records the global observable time series (mass, speeds, WSS) to CSV,
//   * extracts connected WSS-hotspot *features* on the wall (regions whose
//     wall shear stress exceeds a running threshold) and reports their
//     size, location and peak value — the reduced "risk report" a clinician
//     would watch instead of terabytes of fields.
//
// Run:  ./wss_monitor   (writes wss_timeseries.csv)

#include <cmath>
#include <cstdio>

#include "comm/runtime.hpp"
#include "core/preprocess.hpp"
#include "core/timeseries.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "lb/solver.hpp"
#include "lb/wss.hpp"
#include "vis/features.hpp"

int main() {
  using namespace hemo;

  geometry::VoxelizeOptions vox;
  vox.voxelSize = 0.18;
  const auto lattice = geometry::voxelize(
      geometry::makeAneurysmVessel(6.0, 1.0, 1.3, 0.4), vox);
  std::printf("aneurysm vessel: %llu fluid sites\n",
              static_cast<unsigned long long>(lattice.numFluidSites()));

  core::PreprocessConfig pre;
  const auto report = core::preprocess(lattice, 4, pre);

  comm::Runtime rt(4);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, report.partition, comm.rank());
    lb::LbParams params;
    params.tau = 0.8;
    params.computeStress = true;
    lb::SolverD3Q19 solver(domain, comm, params);

    core::ObservableSeries series;
    const int cycles = 6;
    const int stepsPerCycle = 120;
    if (comm.rank() == 0) {
      std::printf("\n%-7s %12s %12s %12s %s\n", "cycle", "inlet rho",
                  "mean WSS", "max WSS", "hotspots (size@x, peak)");
    }
    for (int cycle = 0; cycle < cycles; ++cycle) {
      // Pulsatile driving: inlet pressure swings around the baseline.
      const double phase = 2.0 * 3.14159265 * cycle / cycles;
      const double inletRho = 1.0 + 0.004 + 0.002 * std::sin(phase);
      solver.setIoletDensity(0, inletRho);
      solver.setIoletDensity(1, 0.996);
      solver.run(stepsPerCycle);
      series.sample(comm, domain, solver.macro(), solver.stepsDone());

      // Project WSS onto the owned sites (0 away from walls), then extract
      // hotspot features above 60% of the cycle's global maximum.
      std::vector<double> wssField(domain.numOwned(), 0.0);
      double localMax = 0.0;
      for (const auto& w :
           lb::computeWallShearStress(domain, solver.macro())) {
        const auto l = domain.localOf(w.siteId);
        wssField[static_cast<std::size_t>(l)] = w.wss;
        localMax = std::max(localMax, w.wss);
      }
      const double threshold = 0.6 * comm.allreduceMax(localMax);
      const auto hotspots =
          vis::extractFeatures(comm, domain, wssField, threshold);

      if (comm.rank() == 0) {
        const auto& row = series.rows().back();
        std::printf("%-7d %12.4f %12.3e %12.3e ", cycle, inletRho,
                    row.meanWss, row.maxWss);
        for (std::size_t i = 0; i < hotspots.size() && i < 3; ++i) {
          std::printf(" [%llu sites @ x=%.2f, peak %.2e]",
                      static_cast<unsigned long long>(hotspots[i].sizeSites),
                      hotspots[i].centroid.x, hotspots[i].maxValue);
        }
        std::printf("\n");
      }
    }
    if (comm.rank() == 0) {
      if (series.writeCsv("wss_timeseries.csv")) {
        std::printf("\nwrote wss_timeseries.csv (%zu rows)\n",
                    series.rows().size());
      }
      std::printf("in situ risk report: %zu numbers per cycle instead of "
                  "%.1f MB of raw fields\n",
                  static_cast<std::size_t>(7),
                  static_cast<double>(lattice.numFluidSites()) * 160 / 1e6);
    }
  });
  return 0;
}
