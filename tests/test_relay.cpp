// Relay-tier tests: progressive wire round trips, subscribe-once upstream
// dedup, coarse-to-fine forwarding with bit-exact reassembly, the shed
// policy (refinements shed under backpressure, the coarse root never),
// credit-metered flow control, upstream-loss re-subscription through the
// reconnect machinery, drain-and-exit, and a threaded two-level relay
// chain against a live solver (the TSan target).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "core/preprocess.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "relay/relay.hpp"
#include "serve/broker.hpp"
#include "serve/client.hpp"
#include "serve/progressive.hpp"
#include "telemetry/telemetry.hpp"

namespace hemo::relay {
namespace {

steer::ImageFrame testFrame(std::uint64_t step, int w = 33, int h = 21) {
  steer::ImageFrame frame;
  frame.step = step;
  frame.width = w;
  frame.height = h;
  frame.rgb.resize(static_cast<std::size_t>(w) * h * 3);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::size_t i = (static_cast<std::size_t>(y) * w + x) * 3;
      frame.rgb[i + 0] = static_cast<std::uint8_t>((x * 7 + y) & 0xff);
      frame.rgb[i + 1] = static_cast<std::uint8_t>((x ^ (y * 3)) & 0xff);
      frame.rgb[i + 2] = static_cast<std::uint8_t>(step & 0xff);
    }
  }
  return frame;
}

serve::CodecConfig progressiveCodec() {
  serve::CodecConfig codec;
  codec.progressive = true;
  codec.rleImage = true;
  return codec;
}

// --- progressive wire format -----------------------------------------------

TEST(ProgressiveWire, BurstRoundTripsBitExactThroughAssembler) {
  const auto frame = testFrame(6);
  std::uint64_t raw = 0;
  const auto burst =
      serve::encodeProgressiveImage(frame, progressiveCodec(), 8, &raw);
  ASSERT_GE(burst.size(), 2u);
  EXPECT_GT(raw, 0u);
  serve::ProgressiveAssembler assembler;
  for (std::size_t l = 0; l < burst.size(); ++l) {
    const auto pf = serve::decodeProgressiveFrame(burst[l]);
    EXPECT_EQ(pf.level, static_cast<std::int32_t>(l));
    EXPECT_EQ(pf.numLevels, static_cast<std::int32_t>(burst.size()));
    EXPECT_TRUE(assembler.accept(pf));
    // Usable image from the very first (root) frame.
    EXPECT_TRUE(assembler.hasImage());
  }
  EXPECT_TRUE(assembler.complete());
  const auto out = assembler.current();
  EXPECT_EQ(out.step, frame.step);
  EXPECT_EQ(out.rgb, frame.rgb);  // bit-exact after the full burst
}

TEST(ProgressiveWire, RootIsSmallAndGapBreaksChain) {
  const auto frame = testFrame(3, 96, 64);
  const auto burst =
      serve::encodeProgressiveImage(frame, progressiveCodec(), 8);
  ASSERT_GE(burst.size(), 4u);
  // The root is a fraction of the full frame: that is the TTFF win.
  EXPECT_LT(burst.front().size(), frame.rgb.size() / 10);
  serve::ProgressiveAssembler assembler;
  EXPECT_TRUE(assembler.accept(serve::decodeProgressiveFrame(burst[0])));
  // Level 2 without level 1: the residual chain is broken — skipped.
  EXPECT_FALSE(assembler.accept(serve::decodeProgressiveFrame(burst[2])));
  EXPECT_EQ(assembler.framesSkipped(), 1u);
  EXPECT_EQ(assembler.levelsApplied(), 1);
  // The coarse image is still usable (bounded error, right size).
  const auto coarse = assembler.current();
  EXPECT_EQ(coarse.width, frame.width);
  EXPECT_EQ(coarse.rgb.size(), frame.rgb.size());
}

TEST(ProgressiveWire, TryDecodeRejectsMalformedFrames) {
  const auto burst = serve::encodeProgressiveImage(testFrame(1), {});
  auto bytes = burst.front();
  EXPECT_TRUE(serve::tryDecodeProgressiveFrame(bytes).has_value());
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(serve::tryDecodeProgressiveFrame(bytes).has_value());
  EXPECT_FALSE(serve::tryDecodeProgressiveFrame({}).has_value());
}

// --- broker-side progressive publish ----------------------------------------

TEST(BrokerProgressive, StalledClientKeepsRootLosesRefinements) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    serve::BrokerConfig bcfg;
    bcfg.outboxCapacity = 4;
    serve::SessionBroker broker(bcfg);
    serve::ServeClient viewer(broker.connect());
    viewer.setCodec(progressiveCodec());
    viewer.subscribe(serve::StreamKind::kImage, 1);
    broker.drainCommands(comm, 0);
    // Never drained: the outbox fills; refinements must be shed while the
    // root keeps landing (latest-wins at worst).
    for (std::uint64_t step = 1; step <= 8; ++step) {
      broker.publishImage(comm, 42, testFrame(step, 96, 64));
    }
    EXPECT_GT(broker.stats().levelsShed, 0u);
    EXPECT_EQ(broker.levelsShed(0), broker.stats().levelsShed);
    // Drain now: the newest root must be present and usable.
    bool sawUsable = false;
    std::uint64_t lastStep = 0;
    while (auto event = viewer.pollEvent()) {
      if (event->progressiveReady) {
        sawUsable = true;
        lastStep = event->image.step;
      }
    }
    EXPECT_TRUE(sawUsable);
    EXPECT_EQ(lastStep, 8u);
    broker.closeAll();
  });
}

TEST(BrokerProgressive, CreditGrantMetersRefinements) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    serve::SessionBroker broker;  // default outbox is roomy
    serve::ServeClient viewer(broker.connect());
    viewer.setCodec(progressiveCodec());
    viewer.subscribe(serve::StreamKind::kImage, 1);
    const auto burst =
        serve::encodeProgressiveImage(testFrame(1, 96, 64), progressiveCodec());
    const auto levelsPerBurst = static_cast<std::uint32_t>(burst.size()) - 1;
    ASSERT_GE(levelsPerBurst, 2u);
    // Grant exactly one burst's worth of refinements.
    viewer.sendCredit(levelsPerBurst);
    broker.drainCommands(comm, 0);
    broker.publishImage(comm, 42, testFrame(1, 96, 64));  // spends all credits
    broker.publishImage(comm, 42, testFrame(2, 96, 64));  // refinements shed
    EXPECT_EQ(broker.stats().levelsShed, levelsPerBurst);
    int usable = 0;
    std::uint64_t lastStep = 0;
    while (auto event = viewer.pollEvent()) {
      if (event->progressiveReady) {
        ++usable;
        lastStep = event->image.step;
      }
    }
    // Step 1 arrives complete; step 2 arrives as root only.
    EXPECT_EQ(usable, static_cast<int>(levelsPerBurst) + 2);
    EXPECT_EQ(lastStep, 2u);
    EXPECT_FALSE(viewer.progressive().complete());
    // A fresh grant restores full quality.
    viewer.sendCredit(levelsPerBurst);
    broker.drainCommands(comm, 1);
    broker.publishImage(comm, 42, testFrame(3, 96, 64));
    while (auto event = viewer.pollEvent()) {
    }
    EXPECT_TRUE(viewer.progressive().complete());
    EXPECT_EQ(broker.stats().levelsShed, levelsPerBurst);  // no new sheds
    broker.closeAll();
  });
}

// --- relay node --------------------------------------------------------------

TEST(Relay, SubscribeOnceUpstreamRegardlessOfFanout) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    serve::SessionBroker broker;
    RelayNode node(broker.connect());
    node.start(progressiveCodec());
    std::vector<serve::ServeClient> viewers;
    for (int i = 0; i < 16; ++i) {
      viewers.emplace_back(node.connect());
      viewers.back().subscribe(serve::StreamKind::kImage, 4);
    }
    node.pump();
    broker.drainCommands(comm, 0);
    // 16 downstream image subscriptions, ONE upstream.
    EXPECT_EQ(node.upstreamSubscriptionCount(), 1);
    EXPECT_EQ(node.stats().upstreamSubscribes, 1u);
    EXPECT_EQ(broker.numClients(), 1);
    EXPECT_EQ(broker.numRelaySessions(), 1);
    // A faster downstream cadence re-issues the subscription (still one
    // held); a slower one is already covered and sends nothing.
    serve::ServeClient fast(node.connect());
    fast.subscribe(serve::StreamKind::kImage, 2);
    serve::ServeClient slow(node.connect());
    slow.subscribe(serve::StreamKind::kImage, 100);
    node.pump();
    broker.drainCommands(comm, 0);
    EXPECT_EQ(node.upstreamSubscriptionCount(), 1);
    EXPECT_EQ(node.stats().upstreamSubscribes, 2u);
    EXPECT_EQ(broker.numClients(), 1);
    broker.closeAll();
  });
}

TEST(Relay, ForwardsCoarseToFineBitExact) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    serve::SessionBroker broker;
    RelayNode node(broker.connect());
    node.start(progressiveCodec());
    serve::ServeClient viewer(node.connect());
    viewer.subscribe(serve::StreamKind::kImage, 1);
    node.pump();
    broker.drainCommands(comm, 0);
    node.pump();  // consume acks
    const auto frame = testFrame(4, 96, 64);
    broker.publishImage(comm, 7, frame);
    node.pump();
    int usable = 0;
    std::vector<std::uint8_t> last;
    while (auto event = viewer.pollEvent()) {
      if (event->progressiveReady) {
        ++usable;
        last = event->image.rgb;
      }
    }
    // One usable image per level (coarse first), final one bit-exact.
    EXPECT_GE(usable, 2);
    EXPECT_EQ(last, frame.rgb);
    EXPECT_TRUE(viewer.progressive().complete());
    EXPECT_GT(node.stats().framesForwarded, 0u);
    EXPECT_GE(node.stats().ttffSeconds, 0.0);
    broker.closeAll();
  });
}

TEST(Relay, LateJoinerGetsCachedBurstImmediately) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    serve::SessionBroker broker;
    RelayNode node(broker.connect());
    node.start(progressiveCodec());
    serve::ServeClient early(node.connect());
    early.subscribe(serve::StreamKind::kImage, 1);
    node.pump();
    broker.drainCommands(comm, 0);
    const auto frame = testFrame(4, 96, 64);
    broker.publishImage(comm, 7, frame);
    node.pump();
    // Joins after the publish: no new upstream frame needed — the shared
    // cache replays the current burst on subscribe.
    serve::ServeClient late(node.connect());
    late.subscribe(serve::StreamKind::kImage, 1);
    node.pump();
    while (auto event = late.pollEvent()) {
    }
    EXPECT_TRUE(late.progressive().hasImage());
    EXPECT_TRUE(late.progressive().complete());
    EXPECT_EQ(late.progressive().current().rgb, frame.rgb);
    EXPECT_GT(node.stats().cacheReplays, 0u);
    // The cache is one burst deep: bounded by frame size, not history.
    EXPECT_GT(node.cacheBytes(), 0u);
    broker.closeAll();
  });
}

TEST(Relay, ShedsRefinementsForStalledDownstreamNeverRoot) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    serve::SessionBroker broker;
    RelayConfig rcfg;
    rcfg.outboxCapacity = 3;  // tiny: stalls shed quickly
    RelayNode node(broker.connect(), rcfg);
    node.start(progressiveCodec());
    serve::ServeClient viewer(node.connect());
    viewer.subscribe(serve::StreamKind::kImage, 1);
    node.pump();
    broker.drainCommands(comm, 0);
    for (std::uint64_t step = 1; step <= 6; ++step) {
      broker.publishImage(comm, 7, testFrame(step, 96, 64));
      node.pump();  // viewer never drains
    }
    EXPECT_GT(node.stats().levelsShed, 0u);
    bool sawUsable = false;
    std::uint64_t lastStep = 0;
    while (auto event = viewer.pollEvent()) {
      if (event->progressiveReady) {
        sawUsable = true;
        lastStep = event->image.step;
      }
    }
    // The newest root survived the latest-wins outbox: never shed.
    EXPECT_TRUE(sawUsable);
    EXPECT_EQ(lastStep, 6u);
    broker.closeAll();
  });
}

TEST(Relay, DownstreamCreditGrantMetersForwarding) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    serve::SessionBroker broker;
    RelayNode node(broker.connect());
    node.start(progressiveCodec());
    serve::ServeClient viewer(node.connect());
    viewer.subscribe(serve::StreamKind::kImage, 1);
    const auto burst = serve::encodeProgressiveImage(testFrame(1, 96, 64),
                                                     progressiveCodec());
    const auto refinements = static_cast<std::uint32_t>(burst.size()) - 1;
    viewer.sendCredit(refinements);  // one burst's worth
    node.pump();
    broker.drainCommands(comm, 0);
    broker.publishImage(comm, 7, testFrame(1, 96, 64));
    node.pump();
    broker.publishImage(comm, 7, testFrame(2, 96, 64));
    node.pump();
    EXPECT_EQ(node.stats().levelsShed, static_cast<std::uint64_t>(refinements));
    while (auto event = viewer.pollEvent()) {
    }
    // Step 2 arrived root-only (credits spent on step 1's burst).
    EXPECT_EQ(viewer.progressive().step(), 2u);
    EXPECT_FALSE(viewer.progressive().complete());
    broker.closeAll();
  });
}

TEST(Relay, UpstreamLossResubscribesAndResumes) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    serve::BrokerConfig bcfg;
    bcfg.heartbeatEvery = 1;
    bcfg.missedHeartbeatLimit = 1;
    serve::SessionBroker broker(bcfg);
    RelayNode node(broker.connect());
    node.enableUpstreamReconnect([&broker] { return broker.requestConnect(true); },
                                 serve::ReconnectConfig{4, 0, 0, 0x5eed});
    node.start(progressiveCodec());
    serve::ServeClient viewer(node.connect());
    viewer.subscribe(serve::StreamKind::kImage, 1);
    node.pump();
    broker.drainCommands(comm, 1);
    EXPECT_EQ(broker.numRelaySessions(), 1);
    // The relay goes quiet; two heartbeat windows later the broker evicts
    // the wedged session.
    broker.drainCommands(comm, 2);
    broker.drainCommands(comm, 3);
    EXPECT_EQ(broker.numAliveClients(), 0);
    EXPECT_EQ(broker.stats().evictions, 1u);
    // Next pump hits EOF and redials: the session — relay hello, codec,
    // the single upstream subscription — replays automatically.
    node.pump();
    broker.drainCommands(comm, 4);
    EXPECT_EQ(broker.numAliveClients(), 1);
    EXPECT_EQ(broker.numRelaySessions(), 1);
    EXPECT_EQ(node.upstreamReconnects(), 1u);
    EXPECT_EQ(broker.stats().reconnects, 1u);
    // Streams resume end to end.
    const auto frame = testFrame(4, 48, 48);
    broker.publishImage(comm, 7, frame);
    node.pump();
    while (auto event = viewer.pollEvent()) {
    }
    EXPECT_TRUE(viewer.progressive().hasImage());
    EXPECT_EQ(viewer.progressive().current().rgb, frame.rgb);
    broker.closeAll();
  });
}

TEST(Relay, DrainAndExitDeliversTailThenEof) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    serve::SessionBroker broker;
    RelayNode node(broker.connect());
    node.start(progressiveCodec());
    serve::ServeClient viewer(node.connect());
    viewer.subscribe(serve::StreamKind::kImage, 1);
    node.pump();
    broker.drainCommands(comm, 0);
    const auto frame = testFrame(2, 48, 48);
    broker.publishImage(comm, 7, frame);
    // shutdown() drains the queued upstream tail into the downstream
    // outboxes before closing them.
    node.shutdown();
    bool usable = false;
    while (auto event = viewer.nextEvent()) {  // blocking: drains then EOF
      usable |= event->progressiveReady;
    }
    EXPECT_TRUE(usable);
    EXPECT_EQ(viewer.progressive().current().rgb, frame.rgb);
    broker.closeAll();
  });
}

TEST(Relay, PublishesRelayMetrics) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    serve::SessionBroker broker;
    RelayConfig rcfg;
    rcfg.depth = 2;
    RelayNode node(broker.connect(), rcfg);
    node.start(progressiveCodec());
    serve::ServeClient viewer(node.connect());
    viewer.subscribe(serve::StreamKind::kImage, 1);
    node.pump();
    broker.drainCommands(comm, 0);
    broker.publishImage(comm, 7, testFrame(1, 48, 48));
    node.pump();  // publishes relay.* to this rank thread's telemetry
    auto* t = telemetry::threadTelemetry();
    ASSERT_NE(t, nullptr);
    EXPECT_GT(t->metrics().counter("relay.frames_forwarded").value(), 0u);
    EXPECT_EQ(t->metrics().gauge("relay.depth").value(), 2.0);
    EXPECT_EQ(t->metrics().gauge("relay.fanout").value(), 1.0);
    // Satellite: the broker flushes serve.* (frames_dropped included)
    // on demand — the driver calls this every telemetry window.
    broker.publishMetrics();
    EXPECT_GT(t->metrics().counter("serve.frames_sent").value(), 0u);
    EXPECT_EQ(t->metrics().gauge("serve.relay_sessions").value(), 1.0);
    broker.closeAll();
  });
}

// --- threaded end-to-end: two-level chain under a live solver ----------------

TEST(Relay, TwoLevelChainThreadedAgainstLiveSolver) {
  geometry::VoxelizeOptions vopt;
  vopt.voxelSize = 0.3;
  const auto lat =
      geometry::voxelize(geometry::makeAneurysmVessel(5.0, 1.0, 1.0), vopt);
  const auto pre = core::preprocess(lat, 2, core::PreprocessConfig{});

  serve::SessionBroker broker;
  RelayConfig cfg1;
  cfg1.depth = 1;
  RelayNode tier1(broker.connect(), cfg1);
  tier1.start(progressiveCodec());
  RelayConfig cfg2;
  cfg2.depth = 2;
  RelayNode tier2(tier1.connect(), cfg2);
  tier2.start(progressiveCodec());

  constexpr int kViewers = 8;
  std::vector<serve::ServeClient> viewers;
  for (int i = 0; i < kViewers; ++i) {
    viewers.emplace_back(tier2.connect());
    viewers.back().subscribe(serve::StreamKind::kImage, 2);
  }

  std::atomic<bool> stop{false};
  std::thread relayThread1([&] {
    while (!stop.load()) {
      if (tier1.pump() == 0) std::this_thread::yield();
    }
    tier1.shutdown();
  });
  std::thread relayThread2([&] {
    while (!stop.load()) {
      if (tier2.pump() == 0) std::this_thread::yield();
    }
    tier2.shutdown();
  });
  std::vector<std::uint64_t> usable(kViewers, 0);
  std::vector<std::thread> viewerThreads;
  for (int i = 0; i < kViewers; ++i) {
    viewerThreads.emplace_back([&, i] {
      while (!stop.load()) {
        bool idle = true;
        while (auto event = viewers[static_cast<std::size_t>(i)].pollEvent()) {
          idle = false;
          if (event->progressiveReady) ++usable[static_cast<std::size_t>(i)];
        }
        if (idle) std::this_thread::yield();
      }
    });
  }

  int executed = 0;
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, pre.partition, comm.rank());
    core::DriverConfig dcfg;
    dcfg.lb.tau = 0.8;
    dcfg.lb.bodyForce = {1e-5, 0, 0};
    dcfg.lb.computeStress = true;
    dcfg.render.width = 32;
    dcfg.render.height = 32;
    dcfg.render.camera.position = {2.5, 0.5, 8.0};
    dcfg.render.camera.target = {2.5, 0.5, 0.0};
    dcfg.visEvery = 0;
    dcfg.statusEvery = 0;
    core::SimulationDriver driver(domain, comm, dcfg);
    driver.attachBroker(comm.rank() == 0 ? &broker : nullptr);
    const int done = driver.run(20);
    if (comm.rank() == 0) executed = done;
  });
  // Let the tier flush, then stop (relay shutdown drains the tail first).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  relayThread1.join();
  relayThread2.join();
  for (auto& t : viewerThreads) t.join();
  broker.closeAll();

  EXPECT_EQ(executed, 20);
  // Fan-out isolation: the broker served ONE session (tier-1 relay) for
  // 8 viewers; tier-1 served one (tier-2).
  EXPECT_EQ(broker.numClients(), 1);
  EXPECT_EQ(tier1.numDownstream(), 1);
  EXPECT_EQ(tier2.numDownstream(), kViewers);
  EXPECT_EQ(tier1.upstreamSubscriptionCount(), 1);
  EXPECT_EQ(tier2.upstreamSubscriptionCount(), 1);
  // Every viewer rendered at least one usable frame; final drain.
  for (int i = 0; i < kViewers; ++i) {
    while (auto event = viewers[static_cast<std::size_t>(i)].pollEvent()) {
      if (event->progressiveReady) ++usable[static_cast<std::size_t>(i)];
    }
    EXPECT_GT(usable[static_cast<std::size_t>(i)], 0u) << "viewer " << i;
  }
}

}  // namespace
}  // namespace hemo::relay
