// Tests for the second extension wave: velocity-BC iolets, distributed
// feature extraction, streakline assembly and steering observables over a
// user-defined subset.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "core/preprocess.hpp"
#include "geometry/sgmy.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "lb/solver.hpp"
#include "partition/partitioners.hpp"
#include "vis/features.hpp"
#include "vis/particles.hpp"

namespace hemo {
namespace {

geometry::SparseLattice tube(double voxel = 0.25) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = voxel;
  return geometry::voxelize(geometry::makeStraightTube(4.0, 1.0), opt);
}

partition::Partition kway(const geometry::SparseLattice& lat, int parts) {
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner p;
  return p.partition(graph, parts);
}

// --- velocity iolets -------------------------------------------------------------

TEST(VelocityIolet, PlugInflowProducesPrescribedMeanVelocity) {
  const auto lat = tube(0.2);
  const auto part = kway(lat, 2);
  const double u0 = 0.01;  // lattice units
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    lb::LbParams params;
    params.tau = 0.8;
    lb::SolverD3Q19 solver(domain, comm, params);
    // Inlet becomes a velocity BC; outlet stays a pressure BC at rho=1.
    solver.setIoletVelocity(0, {u0, 0, 0});
    solver.run(1500);
    // Mean axial velocity across a mid-tube slab ≈ the prescribed plug
    // speed (mass conservation: equal cross-section areas).
    double sum = 0.0;
    std::uint64_t count = 0;
    for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
      const Vec3d w = lat.siteWorld(domain.globalOf(l));
      if (std::abs(w.x - 2.0) > lat.voxelSize()) continue;
      sum += solver.macro().u[l].x;
      ++count;
    }
    const auto total = comm.allreduceSum(count);
    const double mean = comm.allreduceSum(sum) / static_cast<double>(total);
    EXPECT_NEAR(mean / u0, 1.0, 0.25);
    // And the flow is forward everywhere on the axis.
    EXPECT_GT(mean, 0.0);
  });
}

TEST(VelocityIolet, SpeedScalesTheFlow) {
  const auto lat = tube(0.25);
  const auto part = kway(lat, 1);
  auto fluxAt = [&](double u0) {
    double result = 0.0;
    comm::Runtime rt(1);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, 0);
      lb::LbParams params;
      params.tau = 0.8;
      lb::SolverD3Q19 solver(domain, comm, params);
      solver.setIoletVelocity(0, {u0, 0, 0});
      solver.run(1000);
      for (const auto& u : solver.macro().u) result += u.x;
    });
    return result;
  };
  const double f1 = fluxAt(0.005);
  const double f2 = fluxAt(0.01);
  EXPECT_GT(f1, 0.0);
  EXPECT_NEAR(f2 / f1, 2.0, 0.2);
}

TEST(VelocityIolet, SurvivesSgmyRoundTrip) {
  auto lat = tube(0.3);
  auto iolets = lat.iolets();
  iolets[0].bc = geometry::Iolet::Bc::kVelocity;
  iolets[0].speed = 0.02;
  lat.setIolets(iolets);
  const std::string path = "/tmp/hemo_test_velio.sgmy";
  ASSERT_TRUE(geometry::writeSgmy(path, lat));
  const auto back = geometry::readSgmy(path);
  ASSERT_EQ(back.iolets().size(), 2u);
  EXPECT_EQ(static_cast<int>(back.iolets()[0].bc),
            static_cast<int>(geometry::Iolet::Bc::kVelocity));
  EXPECT_DOUBLE_EQ(back.iolets()[0].speed, 0.02);
  EXPECT_EQ(static_cast<int>(back.iolets()[1].bc),
            static_cast<int>(geometry::Iolet::Bc::kPressure));
  std::remove(path.c_str());
}

// --- feature extraction -------------------------------------------------------------

/// Synthetic scalar with two disjoint blobs along the tube.
std::vector<double> twoBlobScalar(const lb::DomainMap& domain) {
  std::vector<double> s(domain.numOwned(), 0.0);
  for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
    const Vec3d w = domain.lattice().siteWorld(domain.globalOf(l));
    const double d1 = (w - Vec3d{1.0, 0, 0}).norm();
    const double d2 = (w - Vec3d{3.0, 0, 0}).norm();
    if (d1 < 0.5 || d2 < 0.35) s[l] = 1.0;
  }
  return s;
}

class FeatureRankTest : public ::testing::TestWithParam<int> {};

TEST_P(FeatureRankTest, TwoBlobsFoundIdenticallyOnAnyDecomposition) {
  const auto lat = tube(0.2);
  const auto part = kway(lat, GetParam());
  std::vector<vis::Feature> features;
  vis::FeatureStats stats;
  comm::Runtime rt(GetParam());
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    auto result =
        vis::extractFeatures(comm, domain, twoBlobScalar(domain), 0.5, &stats);
    if (comm.rank() == 0) features = std::move(result);
  });
  ASSERT_EQ(features.size(), 2u);
  // Largest first; blob 1 (radius 0.5) beats blob 2 (radius 0.35).
  EXPECT_GT(features[0].sizeSites, features[1].sizeSites);
  EXPECT_NEAR(features[0].centroid.x, 1.0, 0.1);
  EXPECT_NEAR(features[1].centroid.x, 3.0, 0.1);
  EXPECT_NEAR(features[0].centroid.y, 0.0, 0.1);
  EXPECT_DOUBLE_EQ(features[0].maxValue, 1.0);
  EXPECT_TRUE(features[0].bounds.contains({1.0, 0, 0}));
  EXPECT_GE(stats.mergeRounds, 1u);
}

INSTANTIATE_TEST_SUITE_P(Ranks, FeatureRankTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(Features, SizesAreRankInvariant) {
  const auto lat = tube(0.2);
  auto sizesOn = [&](int ranks) {
    const auto part = kway(lat, ranks);
    std::vector<std::uint64_t> sizes;
    comm::Runtime rt(ranks);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      const auto fs =
          vis::extractFeatures(comm, domain, twoBlobScalar(domain), 0.5);
      if (comm.rank() == 0) {
        for (const auto& f : fs) sizes.push_back(f.sizeSites);
      }
    });
    return sizes;
  };
  EXPECT_EQ(sizesOn(1), sizesOn(4));
}

TEST(Features, EmptyWhenNothingExceedsThreshold) {
  const auto lat = tube(0.3);
  const auto part = kway(lat, 2);
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    std::vector<double> zeros(domain.numOwned(), 0.0);
    const auto fs = vis::extractFeatures(comm, domain, zeros, 0.5);
    EXPECT_TRUE(fs.empty());
  });
}

TEST(Features, SingleSpanningComponentHasOneLabel) {
  // Everything above threshold: the entire tube is one feature no matter
  // how many ranks it spans.
  const auto lat = tube(0.25);
  const auto part = kway(lat, 6);
  comm::Runtime rt(6);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    std::vector<double> ones(domain.numOwned(), 1.0);
    const auto fs = vis::extractFeatures(comm, domain, ones, 0.5);
    if (comm.rank() == 0) {
      ASSERT_EQ(fs.size(), 1u);
      EXPECT_EQ(fs[0].sizeSites, lat.numFluidSites());
      EXPECT_EQ(fs[0].id, 0u);  // smallest global id labels the component
    }
  });
}

// --- streaklines ---------------------------------------------------------------------

TEST(Streaklines, AssembleOrdersOldToYoungPerSeed) {
  std::vector<vis::Tracer> tracers;
  for (std::uint32_t seed : {1u, 0u}) {
    for (std::uint32_t age : {3u, 9u, 6u}) {
      vis::Tracer t;
      t.seedId = seed;
      t.age = age;
      t.pos = {static_cast<double>(age), static_cast<double>(seed), 0};
      tracers.push_back(t);
    }
  }
  const auto streaks = vis::assembleStreaklines(tracers);
  ASSERT_EQ(streaks.size(), 2u);
  EXPECT_EQ(streaks[0].seedId, 0u);
  EXPECT_EQ(streaks[1].seedId, 1u);
  for (const auto& s : streaks) {
    ASSERT_EQ(s.vertices.size(), 3u);
    EXPECT_FLOAT_EQ(s.vertices[0].x, 9.f);  // oldest first
    EXPECT_FLOAT_EQ(s.vertices[1].x, 6.f);
    EXPECT_FLOAT_EQ(s.vertices[2].x, 3.f);
  }
}

TEST(Streaklines, ContinuousInjectionDrawsTheStreak) {
  const auto lat = tube(0.25);
  const auto part = kway(lat, 2);
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    lb::MacroFields macro;
    macro.rho.assign(domain.numOwned(), 1.0);
    macro.u.assign(domain.numOwned(), Vec3d{0.15, 0, 0});
    vis::GhostedField field(domain, comm, 2);
    field.refresh(macro, comm);
    vis::TracerSwarm swarm(field);
    const std::vector<Vec3d> nozzle{{0.4, 0, 0}};
    for (int s = 0; s < 20; ++s) {
      swarm.inject(comm, nozzle);
      swarm.advect(comm);
    }
    const auto all = swarm.gather(comm);
    if (comm.rank() == 0) {
      const auto streaks = vis::assembleStreaklines(all);
      ASSERT_EQ(streaks.size(), 1u);
      ASSERT_EQ(streaks[0].vertices.size(), 20u);
      // Monotone from the head (furthest downstream) back to the nozzle.
      for (std::size_t v = 1; v < streaks[0].vertices.size(); ++v) {
        EXPECT_LT(streaks[0].vertices[v].x, streaks[0].vertices[v - 1].x);
      }
    }
  });
}

// --- observables over a user-defined subset -----------------------------------------------

TEST(Observables, RoiRestrictedValuesMatchDirectComputation) {
  const auto lat = tube(0.25);
  core::PreprocessConfig pcfg;
  const auto pre = core::preprocess(lat, 3, pcfg);
  auto [clientEnd, serverEnd] = comm::makeChannelPair();

  // The ROI: the upstream half of the tube (lattice coordinates).
  const BoxI roi{{0, 0, 0}, {lat.dims().x / 2, lat.dims().y, lat.dims().z}};

  std::thread user([clientEnd = clientEnd, roi]() mutable {
    steer::SteeringClient client(clientEnd);
    steer::Command c;
    auto request = [&](steer::ObservableKind kind, bool whole) {
      c = {};
      c.type = steer::MsgType::kRequestObservable;
      c.observable = static_cast<std::uint8_t>(kind);
      if (!whole) c.roi = roi;
      client.send(c);
      const auto r = client.awaitObservable();
      EXPECT_TRUE(r.has_value());
      return r.value();
    };
    const auto massWhole = request(steer::ObservableKind::kMass, true);
    const auto massRoi = request(steer::ObservableKind::kMass, false);
    EXPECT_GT(massWhole.siteCount, massRoi.siteCount);
    EXPECT_GT(massRoi.siteCount, 0u);
    // Mass ≈ site count at rho ~ 1.
    EXPECT_NEAR(massRoi.value, static_cast<double>(massRoi.siteCount), 5.0);
    const auto meanSpeed =
        request(steer::ObservableKind::kMeanSpeed, false);
    const auto maxSpeed = request(steer::ObservableKind::kMaxSpeed, false);
    EXPECT_GE(maxSpeed.value, meanSpeed.value);
    EXPECT_GT(meanSpeed.value, 0.0);
    const auto flux = request(steer::ObservableKind::kMassFluxX, false);
    EXPECT_GT(flux.value, 0.0);  // body force drives +x flow
    c = {};
    c.type = steer::MsgType::kTerminate;
    client.send(c);
  });

  comm::Runtime rt(3);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    lb::DomainMap domain(lat, pre.partition, comm.rank());
    core::DriverConfig cfg;
    cfg.lb.computeStress = true;
    cfg.lb.bodyForce = {1e-5, 0, 0};
    cfg.visEvery = 0;
    cfg.statusEvery = 0;
    core::SimulationDriver driver(
        domain, comm, cfg,
        comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    driver.solver().run(100);  // develop flow before serving requests
    driver.run(1 << 28);
    EXPECT_TRUE(driver.terminated());
  });
  user.join();
}

TEST(Observables, SteeredVelocityIoletViaProtocol) {
  const auto lat = tube(0.25);
  core::PreprocessConfig pcfg;
  const auto pre = core::preprocess(lat, 2, pcfg);
  auto [clientEnd, serverEnd] = comm::makeChannelPair();

  std::thread user([clientEnd = clientEnd]() mutable {
    steer::SteeringClient client(clientEnd);
    steer::Command c;
    c.type = steer::MsgType::kSetIoletVelocity;
    c.ioletId = 0;
    c.force = {0.02, 0, 0};
    client.send(c);
    ASSERT_TRUE(client.awaitAck().has_value());
    c = {};
    c.type = steer::MsgType::kTerminate;
    client.send(c);
  });

  comm::Runtime rt(2);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    lb::DomainMap domain(lat, pre.partition, comm.rank());
    core::DriverConfig cfg;
    cfg.lb.computeStress = true;
    cfg.visEvery = 0;
    cfg.statusEvery = 0;
    core::SimulationDriver driver(
        domain, comm, cfg,
        comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    driver.run(1 << 28);
    EXPECT_EQ(driver.solver().ioletVelocity(0), (Vec3d{0.02, 0, 0}));
  });
  user.join();
}

}  // namespace
}  // namespace hemo

// --- observable time series ------------------------------------------------------

#include "core/timeseries.hpp"

namespace hemo {
namespace {

TEST(TimeSeries, RecordsConsistentRowsAndWritesCsv) {
  const auto lat = tube(0.25);
  const auto part = kway(lat, 2);
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    lb::LbParams params;
    params.tau = 0.8;
    params.bodyForce = {1e-5, 0, 0};
    params.computeStress = true;
    lb::SolverD3Q19 solver(domain, comm, params);
    core::ObservableSeries series;
    for (int k = 0; k < 5; ++k) {
      solver.run(50);
      const auto row =
          series.sample(comm, domain, solver.macro(), solver.stepsDone());
      // Rows identical on every rank (collective reduction).
      EXPECT_NEAR(row.totalMass, static_cast<double>(lat.numFluidSites()),
                  1.0);
      EXPECT_GE(row.maxSpeed, row.meanSpeed);
      EXPECT_GT(row.massFluxX, 0.0);
      EXPECT_GT(row.maxWss, 0.0);
    }
    if (comm.rank() == 0) {
      ASSERT_EQ(series.rows().size(), 5u);
      // Accelerating from rest: flux grows monotonically early on.
      for (std::size_t i = 1; i < series.rows().size(); ++i) {
        EXPECT_GT(series.rows()[i].massFluxX,
                  series.rows()[i - 1].massFluxX);
        EXPECT_EQ(series.rows()[i].step, 50u * (i + 1));
      }
      EXPECT_TRUE(series.writeCsv("/tmp/hemo_test_series.csv"));
      std::ifstream f("/tmp/hemo_test_series.csv");
      std::string header;
      std::getline(f, header);
      EXPECT_EQ(header,
                "step,mass,mean_speed,max_speed,mass_flux_x,mean_wss,"
                "max_wss");
      int lines = 0;
      std::string line;
      while (std::getline(f, line)) ++lines;
      EXPECT_EQ(lines, 5);
      std::remove("/tmp/hemo_test_series.csv");
    } else {
      EXPECT_TRUE(series.rows().empty());  // rows live on the master
    }
  });
}

}  // namespace
}  // namespace hemo

// --- ROI-clipped rendering --------------------------------------------------------

#include "vis/volume.hpp"

namespace hemo {
namespace {

TEST(RenderClip, ClipBoxRestrictsCoverage) {
  const auto lat = tube(0.25);
  partition::Partition part;
  part.numParts = 1;
  part.partOfSite.assign(lat.numFluidSites(), 0);
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    (void)comm;
    lb::DomainMap domain(lat, part, 0);
    lb::MacroFields macro;
    macro.rho.assign(domain.numOwned(), 1.0);
    macro.u.assign(domain.numOwned(), Vec3d{0.02, 0, 0});
    vis::VolumeRenderOptions vro;
    vro.width = 64;
    vro.height = 64;
    vro.camera.position = {2.0, 0, 6};
    vro.camera.target = {2.0, 0, 0};
    vro.transfer = vis::TransferFunction::bloodFlow(0.f, 0.01f);
    auto coverage = [&] {
      const auto img = vis::renderLocal(domain, macro, vro);
      int covered = 0;
      for (std::size_t i = 0; i < img.numPixels(); ++i) {
        if (img.pixel(i).a > 0.01f) ++covered;
      }
      return covered;
    };
    const int full = coverage();
    vro.clipBox = BoxD{{1.5, -2, -2}, {2.5, 2, 2}};  // middle quarter
    const int clipped = coverage();
    EXPECT_GT(full, 0);
    EXPECT_GT(clipped, 0);
    EXPECT_LT(clipped, full / 2);
  });
}

TEST(RenderClip, SteeringMessageSetsAndClearsClip) {
  const auto lat = tube(0.3);
  core::PreprocessConfig pcfg;
  const auto pre = core::preprocess(lat, 2, pcfg);
  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  std::thread user([clientEnd = clientEnd, &lat]() mutable {
    steer::SteeringClient client(clientEnd);
    steer::Command c;
    c.type = steer::MsgType::kSetRenderClip;
    c.roi = {{0, 0, 0}, {lat.dims().x / 2, lat.dims().y, lat.dims().z}};
    client.send(c);
    ASSERT_TRUE(client.awaitAck().has_value());
    c = {};
    c.type = steer::MsgType::kRequestFrame;
    client.send(c);
    const auto clipped = client.awaitImage();
    ASSERT_TRUE(clipped.has_value());
    // Clear the clip and grab another frame; it must cover more pixels.
    c = {};
    c.type = steer::MsgType::kSetRenderClip;
    c.roi = BoxI{};  // empty = clear
    client.send(c);
    c = {};
    c.type = steer::MsgType::kRequestFrame;
    client.send(c);
    const auto full = client.awaitImage();
    ASSERT_TRUE(full.has_value());
    auto litPixels = [](const steer::ImageFrame& f) {
      int lit = 0;
      for (std::size_t i = 0; i + 2 < f.rgb.size(); i += 3) {
        // Count pixels brighter than the background grey.
        if (f.rgb[i] > 30 || f.rgb[i + 1] > 30 || f.rgb[i + 2] > 30) ++lit;
      }
      return lit;
    };
    EXPECT_GT(litPixels(*full), litPixels(*clipped));
    c = {};
    c.type = steer::MsgType::kTerminate;
    client.send(c);
  });
  comm::Runtime rt(2);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    lb::DomainMap domain(lat, pre.partition, comm.rank());
    core::DriverConfig cfg;
    cfg.lb.computeStress = true;
    cfg.lb.bodyForce = {2e-5, 0, 0};
    cfg.visEvery = 0;
    cfg.statusEvery = 0;
    cfg.render.width = 64;
    cfg.render.height = 64;
    cfg.render.camera.position = {2.0, 0, 6.0};
    cfg.render.camera.target = {2.0, 0, 0};
    cfg.render.transfer = vis::TransferFunction::bloodFlow(0.f, 4e-4f);
    core::SimulationDriver driver(
        domain, comm, cfg,
        comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    driver.solver().run(60);
    driver.run(1 << 28);
  });
  user.join();
}

}  // namespace
}  // namespace hemo
