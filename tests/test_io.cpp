// Tests for serialisation, PPM/PGM writers and the CSV reporter.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/csv.hpp"
#include "io/ppm.hpp"
#include "io/serial.hpp"

namespace hemo::io {
namespace {

TEST(Serial, PrimitivesRoundTrip) {
  Writer w;
  w.put<std::uint8_t>(7);
  w.put<std::int32_t>(-12345);
  w.put<double>(3.14159);
  w.put<std::uint64_t>(1ULL << 60);
  Reader r(w.bytes());
  EXPECT_EQ(r.get<std::uint8_t>(), 7);
  EXPECT_EQ(r.get<std::int32_t>(), -12345);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.14159);
  EXPECT_EQ(r.get<std::uint64_t>(), 1ULL << 60);
  EXPECT_TRUE(r.atEnd());
}

TEST(Serial, StringsAndVectors) {
  Writer w;
  w.putString("hello, world");
  w.putString("");
  w.putVec(std::vector<float>{1.f, 2.f, 3.f});
  w.putVec(std::vector<int>{});
  Reader r(w.bytes());
  EXPECT_EQ(r.getString(), "hello, world");
  EXPECT_EQ(r.getString(), "");
  EXPECT_EQ(r.getVec<float>(), (std::vector<float>{1.f, 2.f, 3.f}));
  EXPECT_TRUE(r.getVec<int>().empty());
  EXPECT_TRUE(r.atEnd());
}

TEST(Serial, UnderrunThrows) {
  Writer w;
  w.put<std::uint16_t>(1);
  Reader r(w.bytes());
  EXPECT_THROW(r.get<std::uint64_t>(), CheckError);
}

TEST(Serial, RawBytes) {
  Writer w;
  const char data[4] = {'a', 'b', 'c', 'd'};
  w.putRaw(data, 4);
  Reader r(w.bytes());
  char out[4];
  r.getRaw(out, 4);
  EXPECT_EQ(std::string(out, 4), "abcd");
}

TEST(Ppm, WritesParsableHeaderAndPixels) {
  const std::string path = "/tmp/hemo_test_img.ppm";
  std::vector<std::uint8_t> rgb = {255, 0, 0, 0, 255, 0, 0, 0, 255,
                                   10,  20, 30, 40, 50, 60, 70, 80, 90};
  ASSERT_TRUE(writePpm(path, 3, 2, rgb));
  std::ifstream f(path, std::ios::binary);
  std::string magic;
  int w, h, maxval;
  f >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxval, 255);
  f.get();  // single whitespace after header
  std::vector<std::uint8_t> px(18);
  f.read(reinterpret_cast<char*>(px.data()), 18);
  EXPECT_EQ(px, rgb);
  std::remove(path.c_str());
}

TEST(Ppm, SizeMismatchThrows) {
  EXPECT_THROW(writePpm("/tmp/x.ppm", 2, 2, std::vector<std::uint8_t>(3)),
               CheckError);
}

TEST(Pgm, Writes) {
  const std::string path = "/tmp/hemo_test_img.pgm";
  ASSERT_TRUE(writePgm(path, 2, 2, {0, 85, 170, 255}));
  std::ifstream f(path, std::ios::binary);
  std::string magic;
  f >> magic;
  EXPECT_EQ(magic, "P5");
  std::remove(path.c_str());
}

TEST(Csv, QuotingAndLayout) {
  CsvWriter csv({"name", "value"});
  csv.addRow("plain", 1);
  csv.addRow("with,comma", 2.5);
  csv.addRow("with\"quote", "x");
  std::ostringstream os;
  csv.write(os);
  EXPECT_EQ(os.str(),
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",2.5\n"
            "\"with\"\"quote\",x\n");
  EXPECT_EQ(csv.numRows(), 3u);
}

}  // namespace
}  // namespace hemo::io
