// Serving-plane tests: wire codec round trips (exact lossless, bounded
// quantised), session-broker subscription/fan-out semantics, the shared
// frame cache, per-client codec negotiation, and the slow-client isolation
// guarantee (a stalled client drops frames; the solver and its peers are
// unaffected).

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <thread>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "core/preprocess.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "serve/broker.hpp"
#include "serve/client.hpp"
#include "serve/codec.hpp"
#include "util/check.hpp"

namespace hemo::serve {
namespace {

// --- codec primitives ------------------------------------------------------

TEST(Codec, RleRoundTripExactAndCompresses) {
  // Flat-background-like buffer: long runs with sparse structure.
  std::vector<std::uint8_t> data(4096, 20);
  for (std::size_t i = 1000; i < 1100; ++i) data[i] = static_cast<std::uint8_t>(i);
  const auto coded = rleEncode(data.data(), data.size());
  EXPECT_EQ(rleDecode(coded), data);
  EXPECT_LE(coded.size() * 2, data.size());  // >= 2x reduction
}

TEST(Codec, RleRoundTripWorstCaseStaysExact) {
  std::vector<std::uint8_t> data(257);
  unsigned seed = 12345;
  for (auto& v : data) {
    seed = seed * 1664525u + 1013904223u;
    v = static_cast<std::uint8_t>(seed >> 24);
  }
  EXPECT_EQ(rleDecode(rleEncode(data.data(), data.size())), data);
  EXPECT_EQ(rleDecode(rleEncode(data.data(), 0)),
            std::vector<std::uint8_t>{});
}

TEST(Codec, DeltaVarintRoundTripExact) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 1000; ++i) keys.push_back(i * 3 + 7);
  const auto coded = deltaVarintEncode(keys);
  EXPECT_EQ(deltaVarintDecode(coded), keys);
  // Sorted dense keys code to ~1 byte each vs 8 raw.
  EXPECT_LE(coded.size() * 2, keys.size() * sizeof(std::uint64_t));

  // Unsorted (negative deltas) still round-trips exactly.
  std::vector<std::uint64_t> wild{5, 1, 1u << 30, 0, ~std::uint64_t{0}, 17};
  EXPECT_EQ(deltaVarintDecode(deltaVarintEncode(wild)), wild);
  EXPECT_EQ(deltaVarintDecode(deltaVarintEncode({})),
            std::vector<std::uint64_t>{});
}

TEST(Codec, VarintRejectsOverflowingAndOverlongEncodings) {
  const auto craft = [](std::initializer_list<unsigned> raw) {
    std::vector<std::byte> out;
    for (const unsigned b : raw) out.push_back(static_cast<std::byte>(b));
    return out;
  };
  // 2^63 zigzags to all-ones — the canonical 10-byte maximum varint —
  // so the largest legal encoding must keep round-tripping.
  const std::vector<std::uint64_t> max{std::uint64_t{1} << 63};
  EXPECT_EQ(deltaVarintDecode(deltaVarintEncode(max)), max);

  // A 10th byte carrying more than the 1 bit a u64 has left used to have
  // its high bits silently dropped, aliasing distinct encodings.
  EXPECT_THROW(deltaVarintDecode(craft({0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
                                        0xff, 0xff, 0xff, 0x02})),
               CheckError);
  // A continuation bit on the 10th byte (an 11-byte varint) is overlong.
  EXPECT_THROW(deltaVarintDecode(craft({0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
                                        0xff, 0xff, 0xff, 0x81, 0x00})),
               CheckError);
}

TEST(Codec, QuantFloatStaysWithinStatedError) {
  const double maxError = 1e-3;
  std::vector<float> values;
  unsigned seed = 99;
  for (int i = 0; i < 2000; ++i) {
    seed = seed * 1664525u + 1013904223u;
    values.push_back(static_cast<float>(seed) / 4.0e9f - 0.5f);
  }
  const auto back = quantFloatDecode(quantFloatEncode(values, maxError));
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(back[i], values[i], maxError);
  }
}

TEST(Codec, ImagePayloadRoundTrip) {
  steer::ImageFrame frame;
  frame.step = 42;
  frame.width = 64;
  frame.height = 32;
  frame.rgb.assign(static_cast<std::size_t>(64 * 32 * 3), 20);
  frame.rgb[100] = 200;

  for (const bool rle : {false, true}) {
    CodecConfig codec;
    codec.rleImage = rle;
    std::uint64_t raw = 0;
    const auto bytes = encodeImagePayload(frame, codec, &raw);
    const auto back = decodeImagePayload(bytes);
    EXPECT_EQ(back.step, frame.step);
    EXPECT_EQ(back.width, frame.width);
    EXPECT_EQ(back.height, frame.height);
    EXPECT_EQ(back.rgb, frame.rgb);  // exact either way
    if (rle) {
      EXPECT_LT(bytes.size(), raw);
    } else {
      EXPECT_EQ(bytes.size(), raw);
    }
  }
}

steer::RoiData sampleRoi(std::size_t n) {
  steer::RoiData roi;
  roi.step = 7;
  roi.level = 3;
  for (std::size_t i = 0; i < n; ++i) {
    multires::OctreeNode node;
    node.key = 100 + i * 2;
    node.count = static_cast<std::uint32_t>(1 + i % 5);
    node.meanScalar = 0.01f * static_cast<float>(i);
    node.minScalar = node.meanScalar - 0.005f;
    node.maxScalar = node.meanScalar + 0.005f;
    node.meanVelocity = {0.001f * static_cast<float>(i), -0.002f, 0.0f};
    roi.nodes.push_back(node);
  }
  return roi;
}

TEST(Codec, RoiPayloadLosslessRoundTrip) {
  const auto roi = sampleRoi(300);
  CodecConfig codec;
  codec.deltaIndices = true;  // exact: no quantisation
  std::uint64_t raw = 0;
  const auto bytes = encodeRoiPayload(roi, codec, &raw);
  EXPECT_LT(bytes.size(), raw);
  const auto back = decodeRoiPayload(bytes);
  ASSERT_EQ(back.nodes.size(), roi.nodes.size());
  for (std::size_t i = 0; i < roi.nodes.size(); ++i) {
    EXPECT_EQ(back.nodes[i].key, roi.nodes[i].key);
    EXPECT_EQ(back.nodes[i].count, roi.nodes[i].count);
    EXPECT_FLOAT_EQ(back.nodes[i].meanScalar, roi.nodes[i].meanScalar);
    EXPECT_FLOAT_EQ(back.nodes[i].minScalar, roi.nodes[i].minScalar);
    EXPECT_FLOAT_EQ(back.nodes[i].maxScalar, roi.nodes[i].maxScalar);
    EXPECT_FLOAT_EQ(back.nodes[i].meanVelocity.x,
                    roi.nodes[i].meanVelocity.x);
  }
}

TEST(Codec, RoiPayloadQuantisedStaysWithinBound) {
  const auto roi = sampleRoi(300);
  CodecConfig codec;
  codec.deltaIndices = true;
  codec.quantError = 1e-4;
  std::uint64_t raw = 0;
  const auto bytes = encodeRoiPayload(roi, codec, &raw);
  EXPECT_LT(bytes.size(), raw);
  const auto back = decodeRoiPayload(bytes);
  ASSERT_EQ(back.nodes.size(), roi.nodes.size());
  for (std::size_t i = 0; i < roi.nodes.size(); ++i) {
    EXPECT_EQ(back.nodes[i].key, roi.nodes[i].key);  // keys stay exact
    EXPECT_EQ(back.nodes[i].count, roi.nodes[i].count);
    EXPECT_NEAR(back.nodes[i].meanScalar, roi.nodes[i].meanScalar, 1e-4);
    EXPECT_NEAR(back.nodes[i].minScalar, roi.nodes[i].minScalar, 1e-4);
    EXPECT_NEAR(back.nodes[i].maxScalar, roi.nodes[i].maxScalar, 1e-4);
    EXPECT_NEAR(back.nodes[i].meanVelocity.y, roi.nodes[i].meanVelocity.y,
                1e-4);
  }
}

TEST(Codec, ConfigMaskRoundTripsThroughCommand) {
  CodecConfig codec;
  codec.rleImage = true;
  codec.deltaIndices = true;
  codec.quantError = 5e-3;
  steer::Command cmd;
  cmd.type = steer::MsgType::kSetCodec;
  cmd.codec = codec.mask();
  cmd.value = codec.quantError;
  const auto back =
      CodecConfig::fromCommand(steer::decodeCommand(steer::encodeCommand(cmd)));
  EXPECT_TRUE(back.rleImage);
  EXPECT_TRUE(back.deltaIndices);
  EXPECT_DOUBLE_EQ(back.quantError, 5e-3);
}

TEST(Codec, OversizedCountsAreTypedErrorsNotAllocations) {
  // An adversarial frame can claim any element count in a few bytes; every
  // decoder must bound the count against the remaining payload before
  // reserving memory, and fail with CheckError rather than bad_alloc/OOB.
  steer::ImageFrame img;
  img.width = 2;
  img.height = 2;
  img.rgb.assign(12, 9);
  CodecConfig rle;
  rle.rleImage = true;
  auto coded = encodeImagePayload(img, rle);
  coded.resize(coded.size() / 2);  // truncate mid-payload
  EXPECT_THROW(decodeImagePayload(coded), CheckError);
  EXPECT_FALSE(tryDecodeImagePayload(coded).has_value());

  steer::RoiData roi;
  roi.nodes.resize(8);
  CodecConfig delta;
  delta.deltaIndices = true;
  auto codedRoi = encodeRoiPayload(roi, delta);
  codedRoi.resize(codedRoi.size() - 3);
  EXPECT_THROW(decodeRoiPayload(codedRoi), CheckError);
  EXPECT_FALSE(tryDecodeRoiPayload(codedRoi).has_value());
}

TEST(Codec, FuzzedPayloadsNeverCrashTheDecoders) {
  std::mt19937 rng(0x5E7EuL);  // seeded: failures are reproducible
  std::uniform_int_distribution<int> byteDist(0, 255);
  const auto tryAll = [](const std::vector<std::byte>& coded) {
    const auto tryOne = [&](auto&& decode) {
      try {
        (void)decode(coded);
      } catch (const CheckError&) {
        // typed rejection is the accepted outcome for garbage
      }
    };
    tryOne([](const auto& c) { return rleDecode(c); });
    tryOne([](const auto& c) { return deltaVarintDecode(c); });
    tryOne([](const auto& c) { return quantFloatDecode(c); });
    tryOne([](const auto& c) { return decodeImagePayload(c); });
    tryOne([](const auto& c) { return decodeRoiPayload(c); });
    (void)tryDecodeImagePayload(coded);
    (void)tryDecodeRoiPayload(coded);
  };

  // Mutations of valid coded frames keep most structure intact, reaching
  // the deep decode paths.
  steer::ImageFrame img;
  img.width = 4;
  img.height = 4;
  img.rgb.assign(48, 20);
  steer::RoiData roi;
  roi.nodes.resize(5);
  for (std::size_t i = 0; i < roi.nodes.size(); ++i) {
    roi.nodes[i].key = i * 7;
    roi.nodes[i].count = static_cast<std::uint32_t>(i + 1);
  }
  CodecConfig all;
  all.rleImage = true;
  all.deltaIndices = true;
  all.quantError = 1e-3;
  std::vector<std::vector<std::byte>> seeds;
  seeds.push_back(encodeImagePayload(img, CodecConfig{}));
  seeds.push_back(encodeImagePayload(img, all));
  seeds.push_back(encodeRoiPayload(roi, CodecConfig{}));
  seeds.push_back(encodeRoiPayload(roi, all));
  seeds.push_back(quantFloatEncode({1.0f, 2.0f, 3.5f}, 1e-4));
  for (const auto& seed : seeds) {
    for (int trial = 0; trial < 200; ++trial) {
      auto mutated = seed;
      const auto pos = static_cast<std::size_t>(rng() % mutated.size());
      mutated[pos] = static_cast<std::byte>(byteDist(rng));
      tryAll(mutated);
    }
    // Every prefix truncation as well.
    for (std::size_t n = 0; n < seed.size(); ++n) {
      tryAll(std::vector<std::byte>(seed.begin(), seed.begin() + n));
    }
  }

  // Pure random frames, 0..512 bytes.
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::byte> coded(rng() % 513);
    for (auto& b : coded) b = static_cast<std::byte>(byteDist(rng));
    tryAll(coded);
  }
}

// --- broker unit tests -----------------------------------------------------

steer::ImageFrame flatFrame(std::uint64_t step, int w = 16, int h = 16) {
  steer::ImageFrame f;
  f.step = step;
  f.width = w;
  f.height = h;
  f.rgb.assign(static_cast<std::size_t>(w * h * 3), 20);
  return f;
}

TEST(Broker, SubscriptionTicksFollowCadence) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    SessionBroker broker;
    ServeClient client(broker.connect());
    client.subscribe(StreamKind::kStatus, 3);

    int ticks = 0;
    for (std::uint64_t step = 0; step < 9; ++step) {
      for (const auto& cmd : broker.drainCommands(comm, step)) {
        EXPECT_EQ(static_cast<int>(cmd.type),
                  static_cast<int>(steer::MsgType::kRequestStatus));
        steer::StatusReport status;
        status.step = step;
        broker.respondStatus(comm, cmd.commandId, status);
        broker.respondAck(comm, cmd.commandId);
        ++ticks;
      }
    }
    EXPECT_EQ(ticks, 3);  // steps 0, 3, 6

    // The client sees the subscribe ack plus one status per due step, and
    // no acks for the synthesized ticks.
    int statuses = 0, acks = 0;
    while (auto event = client.pollEvent()) {
      if (event->type == steer::MsgType::kStatus) ++statuses;
      if (event->type == steer::MsgType::kAck) ++acks;
    }
    EXPECT_EQ(statuses, 3);
    EXPECT_EQ(acks, 1);

    client.unsubscribe(StreamKind::kStatus);
    EXPECT_TRUE(broker.drainCommands(comm, 12).empty());
    broker.closeAll();
  });
}

TEST(Broker, TickSharedAcrossMatchingSubscribers) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    SessionBroker broker;
    ServeClient a(broker.connect());
    ServeClient b(broker.connect());
    a.subscribe(StreamKind::kStatus, 1);
    b.subscribe(StreamKind::kStatus, 1);

    const auto cmds = broker.drainCommands(comm, 4);
    ASSERT_EQ(cmds.size(), 1u);  // deduped: one collective for two clients
    broker.respondStatus(comm, cmds[0].commandId, steer::StatusReport{});
    broker.respondAck(comm, cmds[0].commandId);

    for (ServeClient* c : {&a, &b}) {
      bool sawStatus = false;
      while (auto event = c->pollEvent()) {
        sawStatus |= event->type == steer::MsgType::kStatus;
      }
      EXPECT_TRUE(sawStatus);
    }
    broker.closeAll();
  });
}

TEST(Broker, CommandIdsRewrittenPerClient) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    SessionBroker broker;
    ServeClient a(broker.connect());
    ServeClient b(broker.connect());
    // Both clients issue command id 1 — the broker must still route each
    // response (and its ack, carrying the original id) to the right client.
    const auto idA = a.send([] {
      steer::Command c;
      c.type = steer::MsgType::kSetTau;
      c.value = 0.8;
      return c;
    }());
    const auto idB = b.send([] {
      steer::Command c;
      c.type = steer::MsgType::kPause;
      return c;
    }());
    EXPECT_EQ(idA, idB);  // ids collide by construction

    const auto cmds = broker.drainCommands(comm, 0);
    ASSERT_EQ(cmds.size(), 2u);
    EXPECT_NE(cmds[0].commandId, cmds[1].commandId);
    for (const auto& cmd : cmds) broker.respondAck(comm, cmd.commandId);

    for (ServeClient* c : {&a, &b}) {
      auto event = c->pollEvent();
      ASSERT_TRUE(event.has_value());
      EXPECT_EQ(static_cast<int>(event->type),
                static_cast<int>(steer::MsgType::kAck));
      EXPECT_EQ(event->ackId, idA);  // original id restored
      EXPECT_FALSE(c->pollEvent().has_value());  // exactly one ack each
    }
    broker.closeAll();
  });
}

TEST(Broker, RejectRoutedToIssuingClientOnly) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    SessionBroker broker;
    ServeClient a(broker.connect());
    ServeClient b(broker.connect());
    const auto idA = a.send([] {
      steer::Command c;
      c.type = steer::MsgType::kSetTau;
      c.value = 0.2;  // would be guard-rejected by a driver
      return c;
    }());
    b.send([] {
      steer::Command c;
      c.type = steer::MsgType::kPause;
      return c;
    }());

    const auto cmds = broker.drainCommands(comm, 0);
    ASSERT_EQ(cmds.size(), 2u);
    // The driver rejects A's command and acks B's.
    broker.respondReject(comm, cmds[0].commandId,
                         steer::RejectReason::kTauUnstable);
    broker.respondAck(comm, cmds[1].commandId);

    auto eventA = a.pollEvent();
    ASSERT_TRUE(eventA.has_value());
    EXPECT_EQ(static_cast<int>(eventA->type),
              static_cast<int>(steer::MsgType::kReject));
    EXPECT_EQ(eventA->rejectId, idA);  // original id restored
    EXPECT_EQ(static_cast<int>(eventA->rejectReason),
              static_cast<int>(steer::RejectReason::kTauUnstable));
    EXPECT_FALSE(a.pollEvent().has_value());  // exactly one frame

    auto eventB = b.pollEvent();
    ASSERT_TRUE(eventB.has_value());
    EXPECT_EQ(static_cast<int>(eventB->type),
              static_cast<int>(steer::MsgType::kAck));
    EXPECT_FALSE(b.pollEvent().has_value());  // no reject leaked to B
    broker.closeAll();
  });
}

TEST(Broker, RetroactiveRejectAfterAckStillReachesTheClient) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    SessionBroker broker;
    ServeClient client(broker.connect());
    const auto id = client.send([] {
      steer::Command c;
      c.type = steer::MsgType::kSetTau;
      c.value = 0.7;
      return c;
    }());

    const auto cmds = broker.drainCommands(comm, 0);
    ASSERT_EQ(cmds.size(), 1u);
    // Normal flow: the command is applied and acked...
    broker.respondAck(comm, cmds[0].commandId);
    // ...then a sentinel rollback quarantines it, long after the ack
    // erased the live pending entry. The broker's route history must
    // still deliver the retroactive NACK with the original id.
    broker.respondReject(comm, cmds[0].commandId,
                         steer::RejectReason::kDivergence,
                         steer::MsgType::kRejectedAfterRollback);

    auto ack = client.pollEvent();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(static_cast<int>(ack->type),
              static_cast<int>(steer::MsgType::kAck));
    auto nack = client.pollEvent();
    ASSERT_TRUE(nack.has_value());
    EXPECT_EQ(static_cast<int>(nack->type),
              static_cast<int>(steer::MsgType::kRejectedAfterRollback));
    EXPECT_EQ(nack->rejectId, id);
    EXPECT_EQ(static_cast<int>(nack->rejectReason),
              static_cast<int>(steer::RejectReason::kDivergence));
    broker.closeAll();
  });
}

TEST(Broker, SharedCacheEncodesOncePerCodec) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    SessionBroker broker;
    std::vector<ServeClient> clients;
    for (int i = 0; i < 4; ++i) clients.emplace_back(broker.connect());
    for (auto& c : clients) c.subscribe(StreamKind::kImage, 1);
    CodecConfig rle;
    rle.rleImage = true;
    clients[3].setCodec(rle);  // one client negotiates compression
    for (const auto& cmd : broker.drainCommands(comm, 0)) {
      broker.respondAck(comm, cmd.commandId);
    }

    const auto frame = flatFrame(1);
    broker.publishImage(comm, /*view=*/123, frame);
    // Two encodings (raw + rle), two hits from the raw-codec repeats.
    EXPECT_EQ(broker.stats().cacheMisses, 2u);
    EXPECT_EQ(broker.stats().cacheHits, 2u);
    EXPECT_LT(broker.stats().wireBytes, broker.stats().rawBytes);

    for (int i = 0; i < 4; ++i) {
      auto img = clients[static_cast<std::size_t>(i)].awaitImage();
      ASSERT_TRUE(img.has_value());
      EXPECT_EQ(img->rgb, frame.rgb);  // identical pixels for every client
    }
    broker.closeAll();
  });
}

// --- closed loop with a live driver ---------------------------------------

geometry::SparseLattice aneurysmLattice(double voxel = 0.3) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = voxel;
  return geometry::voxelize(geometry::makeAneurysmVessel(5.0, 1.0, 1.0), opt);
}

core::DriverConfig smallDriverConfig() {
  core::DriverConfig dcfg;
  dcfg.lb.tau = 0.8;
  dcfg.lb.bodyForce = {1e-5, 0, 0};
  dcfg.lb.computeStress = true;
  dcfg.render.width = 32;
  dcfg.render.height = 32;
  dcfg.render.camera.position = {2.5, 0.5, 8.0};
  dcfg.render.camera.target = {2.5, 0.5, 0.0};
  dcfg.visEvery = 0;  // broker cadences drive all rendering
  dcfg.statusEvery = 0;
  return dcfg;
}

TEST(BrokerLoop, SixteenClientsOneStalledSolverUnaffected) {
  const auto lat = aneurysmLattice();
  const auto pre = core::preprocess(lat, 2, core::PreprocessConfig{});

  BrokerConfig bcfg;
  bcfg.outboxCapacity = 8;
  SessionBroker broker(bcfg);
  constexpr int kClients = 16;
  constexpr int kStalled = 7;  // never drained
  std::vector<ServeClient> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back(broker.connect());
    clients.back().subscribe(StreamKind::kImage, 2);
  }

  std::vector<int> framesGot(kClients, 0);
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, pre.partition, comm.rank());
    core::SimulationDriver driver(domain, comm, smallDriverConfig());
    driver.attachBroker(comm.rank() == 0 ? &broker : nullptr);

    int executed = 0;
    for (int chunk = 0; chunk < 8; ++chunk) {
      executed += driver.run(5);
      if (comm.rank() != 0) continue;
      // Well-behaved clients drain between chunks; kStalled never does.
      for (int i = 0; i < kClients; ++i) {
        if (i == kStalled) continue;
        while (auto event = clients[static_cast<std::size_t>(i)].pollEvent()) {
          if (event->type == steer::MsgType::kImageFrame) {
            // In-order, every cadence-due step: 2, 4, 6, ...
            ++framesGot[static_cast<std::size_t>(i)];
            EXPECT_EQ(event->image.step,
                      2u * static_cast<std::uint64_t>(
                               framesGot[static_cast<std::size_t>(i)]));
          }
        }
      }
    }
    // The stalled client never blocked the solver.
    EXPECT_EQ(executed, 40);

    if (comm.rank() == 0) {
      // Render-once: 20 due steps -> 20 renders for 16 clients.
      EXPECT_EQ(driver.renderStage().rendersDone(), 20u);
      // Shared cache served the other 15 clients per step.
      EXPECT_EQ(broker.stats().cacheMisses, 20u);
      EXPECT_EQ(broker.stats().cacheHits, 20u * 15u);
      // Slow-client isolation: only the stalled outbox dropped frames.
      EXPECT_GT(broker.framesDropped(kStalled), 0u);
      for (int i = 0; i < kClients; ++i) {
        if (i != kStalled) EXPECT_EQ(broker.framesDropped(i), 0u) << i;
      }
      broker.closeAll();
    }
  });

  // Every healthy client received every cadence-due frame.
  for (int i = 0; i < kClients; ++i) {
    if (i == kStalled) continue;
    while (auto event = clients[static_cast<std::size_t>(i)].pollEvent()) {
      if (event->type == steer::MsgType::kImageFrame) {
        ++framesGot[static_cast<std::size_t>(i)];
      }
    }
    EXPECT_EQ(framesGot[static_cast<std::size_t>(i)], 20) << i;
  }
}

TEST(BrokerLoop, StreamsDeliverOnCadenceWithNegotiatedCodec) {
  const auto lat = aneurysmLattice();
  const auto pre = core::preprocess(lat, 2, core::PreprocessConfig{});

  SessionBroker broker;
  ServeClient coded(broker.connect());
  ServeClient plain(broker.connect());
  CodecConfig codec;
  codec.rleImage = true;
  codec.deltaIndices = true;
  coded.setCodec(codec);
  for (ServeClient* c : {&coded, &plain}) {
    c->subscribe(StreamKind::kImage, 10);
    c->subscribe(StreamKind::kStatus, 10);
    c->subscribe(StreamKind::kTelemetry, 15);
    c->subscribeObservable(10, steer::ObservableKind::kMeanSpeed);
    c->subscribeRoi(15, BoxI{{0, 0, 0}, {64, 64, 64}}, 1);
  }

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, pre.partition, comm.rank());
    core::SimulationDriver driver(domain, comm, smallDriverConfig());
    driver.attachBroker(comm.rank() == 0 ? &broker : nullptr);
    driver.run(30);
    if (comm.rank() == 0) broker.closeAll();
  });

  for (ServeClient* c : {&coded, &plain}) {
    int images = 0, statuses = 0, telemetries = 0, observables = 0, rois = 0;
    std::uint64_t imageWire = 0;
    bool codedImageSeen = false;
    while (auto event = c->nextEvent()) {
      switch (event->type) {
        case steer::MsgType::kImageFrame:
        case steer::MsgType::kCodedImage:
          ++images;
          imageWire = event->wireBytes;
          codedImageSeen |= event->type == steer::MsgType::kCodedImage;
          EXPECT_EQ(event->image.width, 32);
          EXPECT_GT(event->image.rgb.size(), 0u);
          break;
        case steer::MsgType::kStatus:
          ++statuses;
          break;
        case steer::MsgType::kTelemetry:
          ++telemetries;
          EXPECT_GT(event->telemetry.sites, 0u);
          break;
        case steer::MsgType::kObservable:
          ++observables;
          EXPECT_GT(event->observable.siteCount, 0u);
          break;
        case steer::MsgType::kRoiData:
        case steer::MsgType::kCodedRoi:
          ++rois;
          EXPECT_FALSE(event->roi.nodes.empty());
          break;
        default:
          break;
      }
    }
    // Image cadence 10 over 30 steps: due at 10, 20, 30. Status-like
    // ticks fire pre-step at 0, 10, 20 (cadence 10) / 0, 15 (cadence 15).
    EXPECT_EQ(images, 3);
    EXPECT_EQ(statuses, 3);
    EXPECT_EQ(telemetries, 2);
    EXPECT_EQ(observables, 3);
    EXPECT_EQ(rois, 2);
    // The negotiated codec actually shrank the wire frames.
    if (c == &coded) {
      EXPECT_TRUE(codedImageSeen);
      const std::uint64_t raw = 1 + 8 + 4 + 4 + 8 + 32 * 32 * 3;
      EXPECT_LE(imageWire * 2, raw);  // >= 2x reduction on the aneurysm view
    } else {
      EXPECT_FALSE(codedImageSeen);
    }
  }
}

TEST(BrokerLoop, ConcurrentClientThreadsUnderLoad) {
  // N client threads hammer the broker while the solver runs — the TSan
  // configuration of this test is the data-race gate for the serving plane.
  const auto lat = aneurysmLattice();
  const auto pre = core::preprocess(lat, 2, core::PreprocessConfig{});

  SessionBroker broker;
  constexpr int kClients = 4;
  std::vector<ServeClient> clients;
  for (int i = 0; i < kClients; ++i) clients.emplace_back(broker.connect());

  std::vector<std::thread> threads;
  std::vector<int> eventsSeen(kClients, 0);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto& client = clients[static_cast<std::size_t>(i)];
      client.subscribe(StreamKind::kImage, 3 + i);
      client.subscribe(StreamKind::kStatus, 5);
      while (auto event = client.nextEvent()) {
        ++eventsSeen[static_cast<std::size_t>(i)];
      }
    });
  }

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, pre.partition, comm.rank());
    core::SimulationDriver driver(domain, comm, smallDriverConfig());
    driver.attachBroker(comm.rank() == 0 ? &broker : nullptr);
    driver.run(25);
    if (comm.rank() == 0) broker.closeAll();
  });
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_GT(eventsSeen[static_cast<std::size_t>(i)], 0) << i;
  }
}

}  // namespace
}  // namespace hemo::serve
