// Lattice-Boltzmann solver tests: velocity-set algebra, conservation laws,
// Poiseuille validation against Hagen-Poiseuille, partition invariance
// (the same physics regardless of rank count), boundary conditions,
// steering setters, stress/WSS extraction and checkpoint/restart.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>

#include "comm/runtime.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "lb/checkpoint.hpp"
#include "lb/solver.hpp"
#include "lb/wss.hpp"
#include "partition/partitioners.hpp"
#include "util/stats.hpp"

namespace hemo::lb {
namespace {

using geometry::SparseLattice;

template <typename Lattice>
void checkVelocitySetAlgebra() {
  const auto& set = Lattice::kSet;
  double wsum = 0.0;
  Vec3d first{0, 0, 0};
  double second[3][3] = {};
  for (int i = 0; i < Lattice::kQ; ++i) {
    const double w = set.w[static_cast<std::size_t>(i)];
    const Vec3d c = set.c[static_cast<std::size_t>(i)].template cast<double>();
    wsum += w;
    first += c * w;
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) second[a][b] += w * c[a] * c[b];
    }
    // Opposite table is an involution mapping c -> -c.
    const int o = set.opposite[static_cast<std::size_t>(i)];
    EXPECT_EQ(set.c[static_cast<std::size_t>(o)],
              -set.c[static_cast<std::size_t>(i)]);
    EXPECT_EQ(set.opposite[static_cast<std::size_t>(o)], i);
    // geoDir consistency.
    if (i == 0) {
      EXPECT_EQ(set.geoDir[0], -1);
    } else {
      EXPECT_EQ(geometry::kDirections[static_cast<std::size_t>(
                    set.geoDir[static_cast<std::size_t>(i)])],
                set.c[static_cast<std::size_t>(i)]);
    }
  }
  EXPECT_NEAR(wsum, 1.0, 1e-14);
  EXPECT_NEAR(first.norm(), 0.0, 1e-14);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      EXPECT_NEAR(second[a][b], a == b ? kCs2 : 0.0, 1e-14)
          << Lattice::kName << " second moment (" << a << "," << b << ")";
    }
  }
}

TEST(VelocitySets, D3Q19Algebra) { checkVelocitySetAlgebra<D3Q19>(); }
TEST(VelocitySets, D3Q15Algebra) { checkVelocitySetAlgebra<D3Q15>(); }
TEST(VelocitySets, D3Q27Algebra) { checkVelocitySetAlgebra<D3Q27>(); }

TEST(Equilibrium, MomentsMatchInputs) {
  const double rho = 1.05;
  const Vec3d u{0.02, -0.01, 0.005};
  double m0 = 0.0;
  Vec3d m1{0, 0, 0};
  for (int i = 0; i < D3Q19::kQ; ++i) {
    const double fi = equilibrium<D3Q19>(i, rho, u);
    m0 += fi;
    m1 += D3Q19::kSet.c[static_cast<std::size_t>(i)].cast<double>() * fi;
  }
  EXPECT_NEAR(m0, rho, 1e-13);
  EXPECT_NEAR((m1 / rho - u).norm(), 0.0, 1e-13);
}

// --- shared helpers ---------------------------------------------------------

struct GlobalField {
  std::vector<double> rho;
  std::vector<Vec3d> u;
};

/// Run `steps` on `ranks` thread-ranks, then collect the global macro
/// fields (each rank fills the slots of its owned sites).
template <typename Lattice = D3Q19>
GlobalField runGathered(
    const SparseLattice& lattice, int ranks, const LbParams& params,
    int steps,
    const std::type_identity_t<std::function<void(Solver<Lattice>&)>>&
        setup = nullptr) {
  const auto graph = partition::buildSiteGraph(lattice);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, ranks);

  GlobalField field;
  field.rho.assign(lattice.numFluidSites(), 0.0);
  field.u.assign(lattice.numFluidSites(), Vec3d{});

  comm::Runtime rt(ranks);
  rt.run([&](comm::Communicator& comm) {
    DomainMap domain(lattice, part, comm.rank());
    Solver<Lattice> solver(domain, comm, params);
    if (setup) setup(solver);
    solver.run(steps);
    for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
      const auto g = static_cast<std::size_t>(domain.globalOf(l));
      field.rho[g] = solver.macro().rho[static_cast<std::size_t>(l)];
      field.u[g] = solver.macro().u[static_cast<std::size_t>(l)];
    }
  });
  return field;
}

SparseLattice closedCavity() {
  geometry::Scene scene;
  scene.addShape(std::make_unique<geometry::SphereShape>(Vec3d{0, 0, 0}, 1.2));
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.15;
  return geometry::voxelize(scene, opt);
}

SparseLattice poiseuilleTube(double voxel = 0.125) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = voxel;
  return geometry::voxelize(geometry::makeStraightTube(4.0, 1.0), opt);
}

// --- conservation -----------------------------------------------------------

TEST(Conservation, ClosedCavityMassExact) {
  const auto lattice = closedCavity();
  LbParams params;
  params.tau = 0.7;

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    const auto graph = partition::buildSiteGraph(lattice);
    partition::SfcPartitioner sfc;
    const auto part = sfc.partition(graph, comm.size());
    DomainMap domain(lattice, part, comm.rank());
    SolverD3Q19 solver(domain, comm, params);
    // Seed a rotating perturbation.
    solver.initWith([](const Vec3d& w) {
      return std::pair{1.0, Vec3d{0.01 * w.y, -0.01 * w.x, 0.0}};
    });
    solver.step();  // refresh macros through one update
    const double m0 = comm.allreduceSum(solver.localMass());
    solver.run(100);
    const double m1 = comm.allreduceSum(solver.localMass());
    EXPECT_NEAR(m1 / m0, 1.0, 1e-12);
  });
}

TEST(Conservation, ClosedCavityMomentumDecays) {
  const auto lattice = closedCavity();
  LbParams params;
  params.tau = 0.7;
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    const auto graph = partition::buildSiteGraph(lattice);
    partition::SfcPartitioner sfc;
    const auto part = sfc.partition(graph, 1);
    DomainMap domain(lattice, part, 0);
    SolverD3Q19 solver(domain, comm, params);
    solver.initWith([](const Vec3d&) {
      return std::pair{1.0, Vec3d{0.02, 0.0, 0.0}};
    });
    solver.step();
    const double p0 = solver.localMomentum().norm();
    solver.run(300);
    const double p1 = solver.localMomentum().norm();
    // No-slip walls drain momentum.
    EXPECT_LT(p1, 0.2 * p0);
  });
}

// --- Poiseuille validation ---------------------------------------------------

TEST(Poiseuille, BodyForceProfileMatchesParabola) {
  const auto lattice = poiseuilleTube();
  LbParams params;
  params.tau = 0.8;
  const double F = 1e-5;
  params.bodyForce = {F, 0, 0};

  const auto field = runGathered(lattice, 2, params, 2500);

  // Sample the cross-section at mid-tube; compare with
  // u(r) = F (R^2 - r^2) / (4 nu) in lattice units.
  const double h = lattice.voxelSize();
  const double nu = params.viscosity();
  const double Rworld = 1.0;
  const double R = Rworld / h;
  const double uMaxTheory = F * R * R / (4.0 * nu);

  double uMaxMeasured = 0.0;
  RunningStats relError;
  for (std::uint64_t g = 0; g < lattice.numFluidSites(); ++g) {
    const Vec3d w = lattice.siteWorld(g);
    if (std::abs(w.x - 2.0) > h) continue;  // mid-tube slab
    const double r = std::sqrt(w.y * w.y + w.z * w.z) / h;
    if (r > R - 2.0) continue;  // skip the staircase boundary layer
    const double expect = F * (R * R - r * r) / (4.0 * nu);
    const double got = field.u[static_cast<std::size_t>(g)].x;
    uMaxMeasured = std::max(uMaxMeasured, got);
    relError.add(std::abs(got - expect) / uMaxTheory);
  }
  ASSERT_GT(relError.count(), 50u);
  EXPECT_NEAR(uMaxMeasured / uMaxTheory, 1.0, 0.15);
  EXPECT_LT(relError.mean(), 0.10);
}

TEST(Poiseuille, TransverseVelocityNegligible) {
  const auto lattice = poiseuilleTube(0.2);
  LbParams params;
  params.tau = 0.8;
  params.bodyForce = {1e-5, 0, 0};
  const auto field = runGathered(lattice, 2, params, 1200);
  double maxAxial = 0.0, maxTransverse = 0.0;
  for (const auto& u : field.u) {
    maxAxial = std::max(maxAxial, std::abs(u.x));
    maxTransverse =
        std::max({maxTransverse, std::abs(u.y), std::abs(u.z)});
  }
  EXPECT_LT(maxTransverse, 0.12 * maxAxial);
}

TEST(Poiseuille, PressureDrivenFlowFollowsGradient) {
  auto lattice = poiseuilleTube(0.2);
  // Raise inlet density, lower outlet density.
  auto iolets = lattice.iolets();
  ASSERT_EQ(iolets.size(), 2u);

  LbParams params;
  params.tau = 0.8;

  auto fluxWith = [&](double drho) {
    const auto field = runGathered(
        lattice, 2, params, 800, [&](SolverD3Q19& solver) {
          solver.setIoletDensity(0, 1.0 + drho);  // inlet
          solver.setIoletDensity(1, 1.0 - drho);  // outlet
        });
    double flux = 0.0;
    for (std::uint64_t g = 0; g < lattice.numFluidSites(); ++g) {
      flux += field.u[static_cast<std::size_t>(g)].x;
    }
    return flux;
  };

  const double f1 = fluxWith(0.001);
  const double f2 = fluxWith(0.002);
  EXPECT_GT(f1, 0.0);
  EXPECT_GT(f2, 1.5 * f1);  // roughly linear in the pressure drop
  const double fr = fluxWith(-0.001);
  EXPECT_LT(fr, 0.0);  // reversed gradient reverses the flow
}

// --- partition invariance -----------------------------------------------------

class RankInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(RankInvarianceTest, FieldsIndependentOfDecomposition) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  const auto lattice =
      geometry::voxelize(geometry::makeAneurysmVessel(5.0, 1.0, 1.0), opt);
  LbParams params;
  params.tau = 0.75;
  params.bodyForce = {5e-6, 0, 0};

  const auto reference = runGathered(lattice, 1, params, 40);
  const auto parallel = runGathered(lattice, GetParam(), params, 40);
  ASSERT_EQ(parallel.u.size(), reference.u.size());
  for (std::size_t g = 0; g < reference.u.size(); ++g) {
    EXPECT_NEAR((parallel.u[g] - reference.u[g]).norm(), 0.0, 1e-13);
    EXPECT_NEAR(parallel.rho[g] - reference.rho[g], 0.0, 1e-13);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankInvarianceTest,
                         ::testing::Values(2, 3, 4, 7));

TEST(Determinism, RepeatedRunsBitIdentical) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  const auto lattice =
      geometry::voxelize(geometry::makeStraightTube(4.0, 1.0), opt);
  LbParams params;
  params.tau = 0.8;
  params.bodyForce = {1e-5, 0, 0};
  const auto a = runGathered(lattice, 3, params, 30);
  const auto b = runGathered(lattice, 3, params, 30);
  for (std::size_t g = 0; g < a.u.size(); ++g) {
    EXPECT_EQ(a.u[g].x, b.u[g].x);
    EXPECT_EQ(a.rho[g], b.rho[g]);
  }
}

// --- collision operators -------------------------------------------------------

TEST(Trt, ProfileMatchesParabola) {
  // TRT with magic 3/16 places the bounce-back wall exactly mid-link, so
  // the coarse-lattice profile should track theory at least as well as BGK.
  const auto lattice = poiseuilleTube();
  LbParams trt;
  trt.tau = 0.8;
  trt.bodyForce = {1e-5, 0, 0};
  trt.collision = LbParams::Collision::kTrt;
  const auto field = runGathered(lattice, 2, trt, 2500);

  const double h = lattice.voxelSize();
  const double nu = trt.viscosity();
  const double R = 1.0 / h;
  const double uMaxTheory = 1e-5 * R * R / (4.0 * nu);
  RunningStats relError;
  for (std::uint64_t g = 0; g < lattice.numFluidSites(); ++g) {
    const Vec3d w = lattice.siteWorld(g);
    if (std::abs(w.x - 2.0) > h) continue;
    const double r = std::sqrt(w.y * w.y + w.z * w.z) / h;
    if (r > R - 2.0) continue;
    const double expect = 1e-5 * (R * R - r * r) / (4.0 * nu);
    relError.add(std::abs(field.u[static_cast<std::size_t>(g)].x - expect) /
                 uMaxTheory);
  }
  ASSERT_GT(relError.count(), 50u);
  EXPECT_LT(relError.mean(), 0.10);
}

TEST(Trt, AgreesWithBgkInTheBulk) {
  // The operators differ in their wall-slip error, not in the bulk
  // hydrodynamics — compare away from the staircase boundary.
  const auto lattice = poiseuilleTube(0.2);
  LbParams bgk;
  bgk.tau = 0.8;
  bgk.bodyForce = {1e-5, 0, 0};
  LbParams trt = bgk;
  trt.collision = LbParams::Collision::kTrt;

  const auto a = runGathered(lattice, 2, bgk, 1200);
  const auto b = runGathered(lattice, 2, trt, 1200);
  double num = 0.0, den = 0.0;
  for (std::uint64_t g = 0; g < lattice.numFluidSites(); ++g) {
    const Vec3d w = lattice.siteWorld(g);
    if (std::sqrt(w.y * w.y + w.z * w.z) > 0.5) continue;  // core only
    num += (a.u[static_cast<std::size_t>(g)] -
            b.u[static_cast<std::size_t>(g)])
               .norm2();
    den += a.u[static_cast<std::size_t>(g)].norm2();
  }
  ASSERT_GT(den, 0.0);
  EXPECT_LT(std::sqrt(num / den), 0.25);
}

TEST(Lattice27, ProfileAgreesWithD3Q19) {
  // The 27-velocity set resolves the same hydrodynamics; bulk fields from
  // the two lattices must agree closely after the same number of steps.
  const auto lattice = poiseuilleTube(0.2);
  LbParams params;
  params.tau = 0.8;
  params.bodyForce = {1e-5, 0, 0};
  const auto a = runGathered<D3Q19>(lattice, 2, params, 800);
  const auto b = runGathered<D3Q27>(lattice, 2, params, 800);
  double num = 0.0, den = 0.0;
  for (std::size_t g = 0; g < a.u.size(); ++g) {
    num += (a.u[g] - b.u[g]).norm2();
    den += a.u[g].norm2();
  }
  EXPECT_LT(std::sqrt(num / den), 0.05);
}

TEST(Lattice15, RunsStablyOnTube) {
  const auto lattice = poiseuilleTube(0.25);
  LbParams params;
  params.tau = 0.8;
  params.bodyForce = {1e-5, 0, 0};
  const auto f = runGathered<D3Q15>(lattice, 2, params, 400);
  double maxU = 0.0;
  for (const auto& u : f.u) maxU = std::max(maxU, u.norm());
  EXPECT_GT(maxU, 0.0);
  EXPECT_LT(maxU, 0.1);  // stable, low Mach
  for (const double r : f.rho) {
    EXPECT_GT(r, 0.8);
    EXPECT_LT(r, 1.2);
  }
}

// --- stress & WSS ----------------------------------------------------------------

TEST(Stress, PoiseuilleShearIsLinearInRadius) {
  const auto lattice = poiseuilleTube();
  LbParams params;
  params.tau = 0.8;
  params.bodyForce = {1e-5, 0, 0};
  params.computeStress = true;

  const auto graph = partition::buildSiteGraph(lattice);
  partition::SfcPartitioner sfc;
  const auto part = sfc.partition(graph, 1);

  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    DomainMap domain(lattice, part, 0);
    SolverD3Q19 solver(domain, comm, params);
    solver.run(2500);
    // sigma_xy should be ~ -F*y/2 (force balance) in the bulk.
    const double h = lattice.voxelSize();
    RunningStats err;
    for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
      const Vec3d w = lattice.siteWorld(domain.globalOf(l));
      if (std::abs(w.x - 2.0) > h || std::abs(w.z) > 0.2) continue;
      const double y = w.y / h;  // lattice units
      if (std::abs(w.y) > 0.7) continue;
      const double expected = -1e-5 * y / 2.0;
      const double got = solver.macro().stress[l].xy();
      err.add(std::abs(got - expected));
    }
    ASSERT_GT(err.count(), 10u);
    EXPECT_LT(err.mean(), 2e-6);
  });
}

TEST(Wss, ScalesLinearlyWithDrivingForce) {
  const auto lattice = poiseuilleTube(0.2);
  auto meanWss = [&](double F) {
    LbParams params;
    params.tau = 0.8;
    params.bodyForce = {F, 0, 0};
    params.computeStress = true;
    const auto graph = partition::buildSiteGraph(lattice);
    partition::SfcPartitioner sfc;
    const auto part = sfc.partition(graph, 1);
    double result = 0.0;
    comm::Runtime rt(1);
    rt.run([&](comm::Communicator& comm) {
      DomainMap domain(lattice, part, 0);
      SolverD3Q19 solver(domain, comm, params);
      solver.run(1200);
      const auto samples = computeWallShearStress(domain, solver.macro());
      ASSERT_GT(samples.size(), 50u);
      RunningStats s;
      for (const auto& w : samples) s.add(w.wss);
      result = s.mean();
    });
    return result;
  };
  const double w1 = meanWss(1e-5);
  const double w2 = meanWss(2e-5);
  EXPECT_GT(w1, 0.0);
  EXPECT_NEAR(w2 / w1, 2.0, 0.1);
}

TEST(Wss, MagnitudeNearTheory) {
  const auto lattice = poiseuilleTube();
  LbParams params;
  params.tau = 0.8;
  const double F = 1e-5;
  params.bodyForce = {F, 0, 0};
  params.computeStress = true;
  const auto graph = partition::buildSiteGraph(lattice);
  partition::SfcPartitioner sfc;
  const auto part = sfc.partition(graph, 1);
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    DomainMap domain(lattice, part, 0);
    SolverD3Q19 solver(domain, comm, params);
    solver.run(2500);
    const auto samples = computeWallShearStress(domain, solver.macro());
    RunningStats s;
    for (const auto& w : samples) {
      const Vec3d p = w.worldPos;
      if (std::abs(p.x - 2.0) > 0.5) continue;  // mid-tube band
      s.add(w.wss);
    }
    ASSERT_GT(s.count(), 20u);
    // Theory: wall shear = F*R/2 with R = 8 lattice units.
    const double theory = F * 8.0 / 2.0;
    EXPECT_NEAR(s.mean() / theory, 1.0, 0.35);
  });
}

// --- steering hooks ---------------------------------------------------------------

TEST(Steering, TauAndForceSettersApply) {
  const auto lattice = poiseuilleTube(0.25);
  const auto graph = partition::buildSiteGraph(lattice);
  partition::SfcPartitioner sfc;
  const auto part = sfc.partition(graph, 1);
  LbParams params;
  params.tau = 0.8;
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    DomainMap domain(lattice, part, 0);
    SolverD3Q19 solver(domain, comm, params);
    solver.setTau(1.1);
    EXPECT_DOUBLE_EQ(solver.params().tau, 1.1);
    EXPECT_THROW(solver.setTau(0.4), CheckError);
    solver.setBodyForce({2e-5, 0, 0});
    solver.run(50);
    double maxU = 0.0;
    for (const auto& u : solver.macro().u) maxU = std::max(maxU, u.norm());
    EXPECT_GT(maxU, 0.0);
    solver.setIoletDensity(0, 1.01);
    EXPECT_DOUBLE_EQ(solver.ioletDensity(0), 1.01);
    EXPECT_THROW(solver.setIoletDensity(5, 1.0), CheckError);
  });
}

TEST(Solver, RejectsUnstableTau) {
  const auto lattice = poiseuilleTube(0.25);
  const auto graph = partition::buildSiteGraph(lattice);
  partition::SfcPartitioner sfc;
  const auto part = sfc.partition(graph, 1);
  LbParams params;
  params.tau = 0.5;
  comm::Runtime rt(1);
  EXPECT_THROW(rt.run([&](comm::Communicator& comm) {
                 DomainMap domain(lattice, part, 0);
                 SolverD3Q19 solver(domain, comm, params);
               }),
               CheckError);
}

// --- layout gather/scatter ----------------------------------------------------

TEST(Layout, SoaAosRoundTripIsBitExact) {
  // Property: the layout-agnostic gather/scatter accessors are exact
  // inverses across layouts. Evolve a non-trivial state under SoA, pipe
  // every distribution through an AoS solver and back; every double must
  // survive both hops unchanged.
  const auto lattice = poiseuilleTube(0.25);
  const auto graph = partition::buildSiteGraph(lattice);
  partition::SfcPartitioner sfc;
  const auto part = sfc.partition(graph, 1);
  LbParams params;
  params.tau = 0.8;
  params.bodyForce = {1e-5, 0, 0};

  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    DomainMap domain(lattice, part, 0);
    params.layout = Layout::kSoA;
    SolverD3Q19 soa(domain, comm, params);
    soa.initWith([](const Vec3d& w) {
      return std::pair{1.0 + 0.01 * w.x, Vec3d{0.003 * w.y, 0.0, 0.002 * w.z}};
    });
    soa.run(7);

    params.layout = Layout::kAoS;
    SolverD3Q19 aos(domain, comm, params);
    params.layout = Layout::kSoA;
    SolverD3Q19 back(domain, comm, params);
    for (int i = 0; i < D3Q19::kQ; ++i) {
      aos.setDistribution(i, soa.distribution(i));
    }
    for (int i = 0; i < D3Q19::kQ; ++i) {
      back.setDistribution(i, aos.distribution(i));
    }
    for (int i = 0; i < D3Q19::kQ; ++i) {
      const auto orig = soa.distribution(i);
      EXPECT_EQ(aos.distribution(i), orig) << "direction " << i;
      EXPECT_EQ(back.distribution(i), orig) << "direction " << i;
    }
    // refreshMacros() over identical values is layout-invariant bit for
    // bit (soa's own cache holds the pre-collision moments of the last
    // step, so the comparison is between the two refreshed solvers).
    for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
      EXPECT_EQ(aos.macro().rho[l], back.macro().rho[l]);
    }
  });
}

// --- checkpoint/restart --------------------------------------------------------------

TEST(Checkpoint, RestartReproducesRunEvenAcrossPartitions) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  const auto lattice =
      geometry::voxelize(geometry::makeStraightTube(4.0, 1.0), opt);
  const auto graph = partition::buildSiteGraph(lattice);
  LbParams params;
  params.tau = 0.8;
  params.bodyForce = {1e-5, 0, 0};
  const std::string path = "/tmp/hemo_test_ckpt.bin";

  // Reference: 30 uninterrupted steps on 2 ranks (kway partition).
  const auto reference = runGathered(lattice, 2, params, 30);

  // Run 15 steps on 2 ranks, checkpoint, restore into a 3-rank run with a
  // different decomposition, run 15 more.
  {
    partition::MultilevelKWayPartitioner kway;
    const auto part = kway.partition(graph, 2);
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      DomainMap domain(lattice, part, comm.rank());
      SolverD3Q19 solver(domain, comm, params);
      solver.run(15);
      writeCheckpoint(path, solver, comm);
    });
  }
  GlobalField restored;
  restored.rho.assign(lattice.numFluidSites(), 0.0);
  restored.u.assign(lattice.numFluidSites(), Vec3d{});
  {
    partition::RcbPartitioner rcb;
    const auto part = rcb.partition(graph, 3);
    comm::Runtime rt(3);
    rt.run([&](comm::Communicator& comm) {
      DomainMap domain(lattice, part, comm.rank());
      SolverD3Q19 solver(domain, comm, params);
      const auto result = readCheckpoint(path, solver, comm);
      EXPECT_TRUE(result.ok()) << result.detail;
      EXPECT_EQ(result.step, 15u);
      EXPECT_EQ(solver.stepsDone(), 15u);
      solver.run(15);
      for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
        const auto g = static_cast<std::size_t>(domain.globalOf(l));
        restored.rho[g] = solver.macro().rho[l];
        restored.u[g] = solver.macro().u[l];
      }
    });
  }
  for (std::size_t g = 0; g < reference.u.size(); ++g) {
    EXPECT_NEAR((restored.u[g] - reference.u[g]).norm(), 0.0, 1e-13);
    EXPECT_NEAR(restored.rho[g] - reference.rho[g], 0.0, 1e-13);
  }
  std::remove(path.c_str());
}

TEST(Timers, PhasesAccumulate) {
  const auto lattice = poiseuilleTube(0.25);
  const auto graph = partition::buildSiteGraph(lattice);
  partition::SfcPartitioner sfc;
  const auto part = sfc.partition(graph, 2);
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    DomainMap domain(lattice, part, comm.rank());
    LbParams params;
    SolverD3Q19 solver(domain, comm, params);
    solver.run(10);
    EXPECT_GT(solver.collideTimer().total(), 0.0);
    EXPECT_GT(solver.streamTimer().total(), 0.0);
    solver.resetTimers();
    EXPECT_EQ(solver.collideTimer().total(), 0.0);
  });
}

TEST(Traffic, HaloBytesMatchPlanSize) {
  const auto lattice = poiseuilleTube(0.25);
  const auto graph = partition::buildSiteGraph(lattice);
  partition::RcbPartitioner rcb;
  const auto part = rcb.partition(graph, 2);
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    DomainMap domain(lattice, part, comm.rank());
    LbParams params;
    SolverD3Q19 solver(domain, comm, params);
    solver.run(5);
  });
  const auto halo = rt.totalCounters().of(comm::Traffic::kHalo);
  EXPECT_GT(halo.bytesSent, 0u);
  EXPECT_EQ(halo.bytesSent, halo.bytesReceived);
  // 5 steps, 2 ranks, symmetric cut: messages = 2 ranks × 5 steps (+ setup).
  EXPECT_GE(halo.messagesSent, 10u);
}

}  // namespace
}  // namespace hemo::lb
