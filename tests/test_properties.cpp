// Property-based and stress tests across modules: randomized communication
// soaks, context isolation, voxelizer resolution scaling, solver stability
// sweeps, mid-run steering physics, rendering invariants and scheduler
// convergence. Complements the per-module unit suites.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "comm/runtime.hpp"
#include "core/scheduler.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "lb/solver.hpp"
#include "partition/partitioners.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "vis/transfer.hpp"
#include "vis/volume.hpp"

namespace hemo {
namespace {

// --- comm properties -----------------------------------------------------------

TEST(CommProperty, RandomizedP2pSoakDeliversEverything) {
  // Every rank sends a random number of tagged messages to random peers;
  // totals are announced via alltoall and then everything must arrive
  // intact and in per-pair order.
  const int ranks = 6;
  comm::Runtime rt(ranks);
  rt.run([&](comm::Communicator& comm) {
    Rng rng(1000 + static_cast<std::uint64_t>(comm.rank()));
    const int n = comm.size();
    std::vector<std::vector<double>> toSend(static_cast<std::size_t>(n));
    for (int k = 0; k < 200; ++k) {
      const int dest = static_cast<int>(rng.uniformInt(
          static_cast<std::uint64_t>(n)));
      toSend[static_cast<std::size_t>(dest)].push_back(
          comm.rank() * 1000.0 + k);
    }
    // Announce counts, then send payloads one message per value.
    std::vector<std::vector<std::uint64_t>> counts(
        static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      counts[static_cast<std::size_t>(d)] = {
          toSend[static_cast<std::size_t>(d)].size()};
    }
    const auto expect = comm.alltoallVec(counts);
    for (int d = 0; d < n; ++d) {
      for (const double v : toSend[static_cast<std::size_t>(d)]) {
        comm.send(d, 7, v);
      }
    }
    for (int src = 0; src < n; ++src) {
      double prev = -1.0;
      for (std::uint64_t i = 0; i < expect[static_cast<std::size_t>(src)][0];
           ++i) {
        const double v = comm.recv<double>(src, 7);
        EXPECT_EQ(static_cast<int>(v / 1000.0), src);
        EXPECT_GT(v, prev);  // per-pair FIFO preserves send order
        prev = v;
      }
    }
  });
}

TEST(CommProperty, NestedSplitContextsIsolate) {
  comm::Runtime rt(8);
  rt.run([&](comm::Communicator& comm) {
    auto half = comm.split(comm.rank() / 4, comm.rank());   // two groups of 4
    auto quarter = half.split(half.rank() / 2, half.rank()); // four groups of 2
    EXPECT_EQ(quarter.size(), 2);
    // Same-tag traffic on all three levels cannot cross-match.
    if (comm.rank() == 0) comm.send(1, 5, 111);
    if (half.rank() == 0) half.send(1, 5, 222);
    if (quarter.rank() == 0) quarter.send(1, 5, 333);
    if (quarter.rank() == 1) {
      EXPECT_EQ(quarter.recv<int>(0, 5), 333);
    }
    if (half.rank() == 1) {
      EXPECT_EQ(half.recv<int>(0, 5), 222);
    }
    if (comm.rank() == 1) {
      EXPECT_EQ(comm.recv<int>(0, 5), 111);
    }
    comm.barrier();
  });
}

TEST(CommProperty, AllreduceVecMatchesSequential) {
  comm::Runtime rt(5);
  rt.run([&](comm::Communicator& comm) {
    std::vector<double> v(64);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = std::sin(static_cast<double>(i) * (comm.rank() + 1));
    }
    auto mine = v;
    comm.allreduceVec(mine, [](double a, double b) { return a + b; });
    for (std::size_t i = 0; i < v.size(); ++i) {
      double expect = 0.0;
      for (int r = 0; r < comm.size(); ++r) {
        expect += std::sin(static_cast<double>(i) * (r + 1));
      }
      EXPECT_NEAR(mine[i], expect, 1e-12);
    }
  });
}

TEST(CommProperty, LargeBroadcastIntact) {
  comm::Runtime rt(7);
  rt.run([&](comm::Communicator& comm) {
    std::vector<std::uint64_t> buf;
    if (comm.rank() == 3) {
      buf.resize(100000);
      Rng rng(42);
      for (auto& x : buf) x = rng.next();
    }
    comm.bcastVec(buf, 3);
    ASSERT_EQ(buf.size(), 100000u);
    std::uint64_t h = 0;
    for (const auto x : buf) h ^= x * 0x9e3779b97f4a7c15ULL;
    const auto h0 = comm.allreduceMax(h);
    EXPECT_EQ(comm.allreduceMin(h), h0);  // identical everywhere
  });
}

// --- geometry properties ----------------------------------------------------------

TEST(GeometryProperty, SiteCountScalesWithResolutionCubed) {
  const auto scene = geometry::makeStraightTube(5.0, 1.0);
  std::vector<std::uint64_t> counts;
  for (const double h : {0.4, 0.2, 0.1}) {
    geometry::VoxelizeOptions opt;
    opt.voxelSize = h;
    counts.push_back(geometry::voxelize(scene, opt).numFluidSites());
  }
  // Halving the voxel multiplies sites by ~8 (within staircase tolerance).
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[0], 8.0, 2.0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 8.0, 1.2);
}

TEST(GeometryProperty, FluidVolumeConvergesToAnalytic) {
  // Voxel volume sum -> pi r^2 L as h -> 0.
  const auto scene = geometry::makeStraightTube(5.0, 1.0);
  const double analytic = 3.14159265358979 * 1.0 * 5.0;
  double prevErr = 1e9;
  for (const double h : {0.3, 0.15}) {
    geometry::VoxelizeOptions opt;
    opt.voxelSize = h;
    const auto lat = geometry::voxelize(scene, opt);
    const double vol =
        static_cast<double>(lat.numFluidSites()) * h * h * h;
    const double err = std::abs(vol - analytic) / analytic;
    EXPECT_LT(err, prevErr);
    prevErr = err;
  }
  EXPECT_LT(prevErr, 0.08);
}

TEST(GeometryProperty, PadVoxelsKeepFluidAwayFromBounds) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  opt.padVoxels = 3;
  const auto lat =
      geometry::voxelize(geometry::makeStraightTube(4.0, 1.0), opt);
  const auto fb = lat.fluidBounds();
  // The tube is clipped by iolets, not the box: no fluid may touch the
  // lateral box faces (y/z), which exist only due to padding.
  EXPECT_GE(fb.lo.y, 1);
  EXPECT_GE(fb.lo.z, 1);
  EXPECT_LE(fb.hi.y, lat.dims().y - 1);
  EXPECT_LE(fb.hi.z, lat.dims().z - 1);
}

// --- LB stability / steering properties ----------------------------------------------

class TauSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(TauSweepTest, StableAndMassConservingAcrossTau) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  const auto lat =
      geometry::voxelize(geometry::makeStraightTube(4.0, 1.0), opt);
  const auto graph = partition::buildSiteGraph(lat);
  partition::SfcPartitioner sfc;
  const auto part = sfc.partition(graph, 2);
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    lb::LbParams params;
    params.tau = GetParam();
    params.bodyForce = {1e-5, 0, 0};
    lb::SolverD3Q19 solver(domain, comm, params);
    solver.run(300);
    double maxU = 0.0;
    for (const auto& u : solver.macro().u) maxU = std::max(maxU, u.norm());
    EXPECT_LT(comm.allreduceMax(maxU), 0.15) << "tau=" << GetParam();
    for (const double r : solver.macro().rho) {
      ASSERT_TRUE(std::isfinite(r));
      ASSERT_GT(r, 0.5);
      ASSERT_LT(r, 1.5);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Taus, TauSweepTest,
                         ::testing::Values(0.55, 0.7, 0.9, 1.2, 1.8));

TEST(SteeringPhysics, IoletChangeMidRunReversesFlow) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  const auto lat =
      geometry::voxelize(geometry::makeStraightTube(4.0, 1.0), opt);
  const auto graph = partition::buildSiteGraph(lat);
  partition::SfcPartitioner sfc;
  const auto part = sfc.partition(graph, 2);
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    lb::LbParams params;
    params.tau = 0.8;
    lb::SolverD3Q19 solver(domain, comm, params);
    solver.setIoletDensity(0, 1.003);
    solver.setIoletDensity(1, 0.997);
    solver.run(600);
    auto flux = [&] {
      double f = 0.0;
      for (const auto& u : solver.macro().u) f += u.x;
      return comm.allreduceSum(f);
    };
    const double forward = flux();
    EXPECT_GT(forward, 0.0);
    // Steer the gradient around mid-run; the flow must reverse.
    solver.setIoletDensity(0, 0.997);
    solver.setIoletDensity(1, 1.003);
    solver.run(1200);
    EXPECT_LT(flux(), 0.0);
  });
}

TEST(SteeringPhysics, ForceSteeringChangesMagnitudeProportionally) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  const auto lat =
      geometry::voxelize(geometry::makeStraightTube(4.0, 1.0), opt);
  const auto graph = partition::buildSiteGraph(lat);
  partition::SfcPartitioner sfc;
  const auto part = sfc.partition(graph, 1);
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, 0);
    lb::LbParams params;
    params.tau = 0.8;
    params.bodyForce = {1e-5, 0, 0};
    lb::SolverD3Q19 solver(domain, comm, params);
    solver.run(1500);
    const double p1 = solver.localMomentum().x;
    solver.setBodyForce({2e-5, 0, 0});
    solver.run(2500);
    const double p2 = solver.localMomentum().x;
    // Stokes regime: momentum doubles with the force.
    EXPECT_NEAR(p2 / p1, 2.0, 0.15);
  });
}

// --- vis properties ---------------------------------------------------------------------

TEST(VisProperty, BloodFlowRampIsMonotoneInOpacity) {
  const auto tf = vis::TransferFunction::bloodFlow(0.f, 1.f);
  float prev = -1.f;
  for (float v = 0.f; v <= 1.f; v += 0.05f) {
    const auto s = tf.sample(v);
    EXPECT_GE(s.a, prev - 1e-6f);
    prev = s.a;
  }
}

TEST(VisProperty, OpacityCutoffBoundsAccumulation) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  const auto lat =
      geometry::voxelize(geometry::makeStraightTube(5.0, 1.0), opt);
  partition::Partition part;
  part.numParts = 1;
  part.partOfSite.assign(lat.numFluidSites(), 0);
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    (void)comm;
    lb::DomainMap domain(lat, part, 0);
    lb::MacroFields macro;
    macro.rho.assign(domain.numOwned(), 1.0);
    macro.u.assign(domain.numOwned(), Vec3d{0.05, 0, 0});
    vis::VolumeRenderOptions vro;
    vro.width = 64;
    vro.height = 64;
    vro.camera.position = {2.5, 0, 6};
    vro.camera.target = {2.5, 0, 0};
    vro.opacityCutoff = 0.3f;
    vro.transfer = vis::TransferFunction::bloodFlow(0.f, 0.01f);
    const auto img = vis::renderLocal(domain, macro, vro);
    for (std::size_t i = 0; i < img.numPixels(); ++i) {
      // One more sample past the cutoff is admissible; 0.6 bounds it.
      EXPECT_LE(img.pixel(i).a, 0.6f);
    }
  });
}

TEST(VisProperty, DenserSamplingConvergesOpacity) {
  // Halving the ray step with opacity correction should give nearly the
  // same accumulated alpha (the correction makes opacity resolution
  // independent to first order).
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  const auto lat =
      geometry::voxelize(geometry::makeStraightTube(5.0, 1.0), opt);
  partition::Partition part;
  part.numParts = 1;
  part.partOfSite.assign(lat.numFluidSites(), 0);
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    (void)comm;
    lb::DomainMap domain(lat, part, 0);
    lb::MacroFields macro;
    macro.rho.assign(domain.numOwned(), 1.0);
    macro.u.assign(domain.numOwned(), Vec3d{0.01, 0, 0});
    auto meanAlpha = [&](double step) {
      vis::VolumeRenderOptions vro;
      vro.width = 48;
      vro.height = 48;
      vro.camera.position = {2.5, 0, 6};
      vro.camera.target = {2.5, 0, 0};
      vro.stepVoxels = step;
      vro.transfer = vis::TransferFunction::bloodFlow(0.f, 0.02f);
      const auto img = vis::renderLocal(domain, macro, vro);
      double sum = 0.0;
      for (std::size_t i = 0; i < img.numPixels(); ++i) {
        sum += img.pixel(i).a;
      }
      return sum / static_cast<double>(img.numPixels());
    };
    const double coarse = meanAlpha(0.8);
    const double fine = meanAlpha(0.2);
    EXPECT_NEAR(fine / coarse, 1.0, 0.2);
  });
}

// --- scheduler property --------------------------------------------------------------------

class BudgetSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(BudgetSweepTest, RecommendationRespectsBudgetExactly) {
  const double budget = GetParam();
  core::AdaptiveVisScheduler sched(budget);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    sched.observe(rng.uniform(1e-4, 1e-2), rng.uniform(1e-4, 5e-2));
    const int every = sched.recommendedEvery();
    EXPECT_LE(sched.predictedShare(every), budget + 1e-9);
    if (every > 1) {
      // One step fewer would bust the budget (tight recommendation).
      EXPECT_GT(sched.predictedShare(every - 1), budget - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweepTest,
                         ::testing::Values(0.02, 0.1, 0.25, 0.5));

// --- partition determinism sweep --------------------------------------------------------------

class PartitionerDeterminismTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PartitionerDeterminismTest, RepeatedRunsIdentical) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  const auto lat =
      geometry::voxelize(geometry::makeAneurysmVessel(5.0, 1.0, 1.0), opt);
  const auto graph = partition::buildSiteGraph(lat);
  std::unique_ptr<partition::Partitioner> p;
  const std::string name = GetParam();
  for (auto& candidate : partition::makeAllPartitioners(lat)) {
    if (name == candidate->name()) p = std::move(candidate);
  }
  ASSERT_NE(p, nullptr);
  const auto a = p->partition(graph, 6);
  const auto b = p->partition(graph, 6);
  EXPECT_EQ(a.partOfSite, b.partOfSite) << name;
}

INSTANTIATE_TEST_SUITE_P(Names, PartitionerDeterminismTest,
                         ::testing::Values("block", "sfc", "hilbert", "rcb",
                                           "greedy", "kway"));

}  // namespace
}  // namespace hemo
