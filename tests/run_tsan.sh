#!/usr/bin/env bash
# Build the LB solver tests under ThreadSanitizer and run them.
#
# The comm runtime simulates ranks as threads, so the solver's fused
# overlap path (send buffers filled by the frontier pass, bulk compute
# racing in-flight messages, receives scattered into fNext), the
# telemetry SPSC trace ring (rank thread producing, driver/test draining),
# and the serving broker (N client threads subscribing/receiving against
# the rank-0 serving thread) are exactly the kind of code TSan can vet.
# Usage: tests/run_tsan.sh [build-dir]
# Also registered under `ctest -L sanitize` when -DHEMO_SANITIZE_TESTS=ON.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build-tsan}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHEMO_SANITIZE=thread
cmake --build "$build_dir" -j --target test_lb test_lb_fused test_telemetry \
  test_serve test_relay test_resilience test_recovery test_migration

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
"$build_dir/tests/test_lb"
"$build_dir/tests/test_lb_fused"
"$build_dir/tests/test_telemetry"
"$build_dir/tests/test_serve"
"$build_dir/tests/test_relay"
"$build_dir/tests/test_resilience"
"$build_dir/tests/test_recovery"
"$build_dir/tests/test_migration"
echo "TSan run clean."
