// Observability tests: wait-state classification against hand-built
// two-rank scenarios (late sender, late receiver, collective straggler),
// cross-rank critical-path aggregation in StepReport, the wait-state wire
// extensions (round trip + legacy-frame back-compat), Chrome-trace flow /
// instant / drop-marker emission, flight-recorder retention bounds, and
// the crash postmortem path: bundles written after an injected rank kill
// and after a HEMO_CHECK failure must parse and render.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "partition/partitioners.hpp"
#include "steer/protocol.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/flightrec.hpp"
#include "telemetry/postmortem.hpp"
#include "telemetry/step_report.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/waitstate.hpp"
#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/json.hpp"

namespace hemo {
namespace {

using telemetry::WaitCause;

[[maybe_unused]] void sleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --- wait-state classification ---------------------------------------------

TEST(WaitState, ClassifiesHandBuiltIntervals) {
  telemetry::WaitStateRecorder ws;

  // Late sender: the message was posted 5ms after we started waiting.
  ws.recordRecv(/*trafficClass=*/1, /*collective=*/false,
                /*sourceWorldRank=*/3, /*waitBeginNs=*/1'000'000,
                /*waitEndNs=*/21'000'000, /*senderPostNs=*/6'000'000);
  // Late receiver: data was queued 4ms before we arrived.
  ws.recordRecv(1, false, 2, 10'000'000, 10'500'000, 6'000'000);
  // Collective straggler wait.
  ws.recordRecv(2, true, 1, 0, 8'000'000, 0);

  EXPECT_NEAR(ws.causeSeconds(WaitCause::kLateSender), 0.020, 1e-9);
  EXPECT_NEAR(ws.causeSeconds(WaitCause::kLateReceiver), 0.0005, 1e-9);
  EXPECT_NEAR(ws.causeSeconds(WaitCause::kCollective), 0.008, 1e-9);
  EXPECT_EQ(ws.totals().classifiedRecvs, 3u);
  EXPECT_EQ(ws.totals().lateReceiverSlackNs, 4'000'000);
  ASSERT_GE(ws.blameNs().size(), 4u);
  EXPECT_EQ(ws.blameNs()[3], 20'000'000);  // only the late sender is blamed
  EXPECT_EQ(ws.blameNs()[2], 0);
  EXPECT_EQ(ws.phaseCauseNs(1, WaitCause::kLateSender), 20'000'000);
  EXPECT_EQ(ws.phaseCauseNs(2, WaitCause::kCollective), 8'000'000);

  // Window deltas advance the baseline.
  auto w = ws.window();
  EXPECT_NEAR(w.lateSenderSeconds, 0.020, 1e-9);
  EXPECT_EQ(w.topBlamedRank, 3);
  EXPECT_NEAR(w.topBlamedSeconds, 0.020, 1e-9);
  w = ws.window();
  EXPECT_EQ(w.lateSenderSeconds, 0.0);
  EXPECT_EQ(w.topBlamedRank, -1);
}

// The live scenarios below need the comm-layer classification hooks, which
// -DHEMO_TELEMETRY=OFF compiles out.
#ifndef HEMO_TELEMETRY_DISABLED
TEST(WaitState, TwoRankLateSenderScenarioBlamesTheSleeper) {
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    comm::Communicator::TrafficScope scope(comm, comm::Traffic::kHalo);
    std::uint64_t payload = 42;
    if (comm.rank() == 1) {
      sleepMs(25);  // the straggler: posts its halo late
      comm.sendBytes(0, 7, &payload, sizeof payload);
    } else {
      std::uint64_t got = 0;
      comm.recvBytesInto(1, 7, &got, sizeof got);
      EXPECT_EQ(got, 42u);
    }
  });
  auto& ws = rt.telemetry(0).waitState();
  EXPECT_GE(ws.causeSeconds(WaitCause::kLateSender), 0.015);
  EXPECT_LT(ws.causeSeconds(WaitCause::kLateReceiver), 0.005);
  ASSERT_GE(ws.blameNs().size(), 2u);
  EXPECT_GT(ws.blameNs()[1], 10'000'000);  // world rank 1 is at fault
  const auto w = ws.window();
  EXPECT_EQ(w.topBlamedRank, 1);
  EXPECT_GE(w.topBlamedSeconds, 0.015);
}

TEST(WaitState, LateReceiverRecordsSlackNotBlame) {
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    comm::Communicator::TrafficScope scope(comm, comm::Traffic::kHalo);
    std::uint64_t payload = 7;
    if (comm.rank() == 1) {
      comm.sendBytes(0, 9, &payload, sizeof payload);  // posted immediately
    } else {
      sleepMs(25);  // we arrive late; the data has long been queued
      std::uint64_t got = 0;
      comm.recvBytesInto(1, 9, &got, sizeof got);
    }
  });
  auto& ws = rt.telemetry(0).waitState();
  EXPECT_LT(ws.causeSeconds(WaitCause::kLateSender), 0.005);
  const auto w = ws.window();
  EXPECT_EQ(w.topBlamedRank, -1);  // nobody else to blame
  EXPECT_GE(w.lateReceiverSlackSeconds, 0.015);
}

TEST(WaitState, CollectiveStragglerChargesCollectiveCause) {
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    if (comm.rank() == 1) sleepMs(25);
    comm.allreduceSum(1.0);
  });
  auto& ws = rt.telemetry(0).waitState();
  EXPECT_GE(ws.causeSeconds(WaitCause::kCollective), 0.015);
}
#endif  // HEMO_TELEMETRY_DISABLED

// --- cross-rank aggregation --------------------------------------------------

TEST(StepReport, AggregationPicksStragglerAndDominantCause) {
  std::vector<telemetry::StepReport> perRank(3);
  // Ranks 0 and 2 both blame rank 1; rank 1 blames rank 0 a little.
  perRank[0].waitLateSenderSeconds = 0.10;
  perRank[0].waitMeasuredSeconds = 0.11;
  perRank[0].waitBlamedRank = 1;
  perRank[0].waitBlamedSeconds = 0.10;
  perRank[1].waitLateSenderSeconds = 0.01;
  perRank[1].waitMeasuredSeconds = 0.01;
  perRank[1].waitBlamedRank = 0;
  perRank[1].waitBlamedSeconds = 0.01;
  perRank[2].waitLateSenderSeconds = 0.05;
  perRank[2].waitCollectiveSeconds = 0.02;
  perRank[2].waitMeasuredSeconds = 0.06;
  perRank[2].waitBlamedRank = 1;
  perRank[2].waitBlamedSeconds = 0.05;

  const auto agg = telemetry::aggregateStepReports(perRank);
  EXPECT_EQ(agg.waitStragglerRank, 1);
  EXPECT_EQ(agg.waitDominantCause,
            static_cast<std::uint8_t>(WaitCause::kLateSender));
  EXPECT_NEAR(agg.waitLateSenderSeconds, 0.16, 1e-12);
  EXPECT_NEAR(agg.waitBlamedSeconds, 0.15, 1e-12);
  // 0.16s of classified p2p wait over 0.18s measured.
  EXPECT_NEAR(agg.waitAttributedFraction, 0.16 / 0.18, 1e-9);
  EXPECT_GE(agg.waitAttributedFraction, 0.85);
}

TEST(StepReport, AggregationFallsBackToBusiestRankWhenNobodyBlames) {
  std::vector<telemetry::StepReport> perRank(2);
  perRank[0].collideSeconds = 0.1;
  perRank[1].collideSeconds = 0.4;  // the busiest rank is the implicit drag
  const auto agg = telemetry::aggregateStepReports(perRank);
  EXPECT_EQ(agg.waitStragglerRank, 1);
  EXPECT_EQ(agg.waitDominantCause,
            static_cast<std::uint8_t>(WaitCause::kNone));
  EXPECT_EQ(agg.waitAttributedFraction, 0.0);
}

// --- wire format -------------------------------------------------------------

TEST(SteerProtocol, StatusWaitFieldsRoundTripAndLegacyFramesDefault) {
  steer::StatusReport s;
  s.step = 123;
  s.consistencyStep = 120;
  s.waitStragglerRank = 7;
  s.waitDominantCause = static_cast<std::uint8_t>(WaitCause::kLateSender);
  s.waitSeconds = 0.25;
  const auto frame = steer::encodeStatus(s);

  const auto d = steer::decodeStatus(frame);
  EXPECT_EQ(d.waitStragglerRank, 7);
  EXPECT_EQ(d.waitDominantCause,
            static_cast<std::uint8_t>(WaitCause::kLateSender));
  EXPECT_NEAR(d.waitSeconds, 0.25, 1e-12);

  // A frame from a pre-wait-state encoder ends at consistencyStep; the
  // decoder must keep its defaults instead of choking.
  auto legacy = frame;
  legacy.resize(legacy.size() - (sizeof(std::int32_t) + sizeof(std::uint8_t) +
                                 sizeof(double)));
  const auto old = steer::decodeStatus(legacy);
  EXPECT_EQ(old.step, 123u);
  EXPECT_EQ(old.consistencyStep, 120u);
  EXPECT_EQ(old.waitStragglerRank, -1);
  EXPECT_EQ(old.waitDominantCause, 0);
  EXPECT_EQ(old.waitSeconds, 0.0);
}

TEST(SteerProtocol, TelemetryWaitBlockRoundTripsAndLegacyFramesDefault) {
  telemetry::StepReport r;
  r.step = 50;
  r.mlups = 12.5;
  r.waitLateSenderSeconds = 0.5;
  r.waitLateReceiverSeconds = 0.125;
  r.waitCollectiveSeconds = 0.0625;
  r.waitLateReceiverSlackSeconds = 0.03125;
  r.waitMeasuredSeconds = 0.75;
  r.waitBlamedRank = 3;
  r.waitBlamedSeconds = 0.5;
  r.waitStragglerRank = 3;
  r.waitDominantCause = static_cast<std::uint8_t>(WaitCause::kLateSender);
  r.waitAttributedFraction = 0.9375;
  const auto frame = steer::encodeTelemetry(r);

  const auto d = steer::decodeTelemetry(frame);
  EXPECT_EQ(d.waitBlamedRank, 3);
  EXPECT_EQ(d.waitStragglerRank, 3);
  EXPECT_NEAR(d.waitLateSenderSeconds, 0.5, 1e-12);
  EXPECT_NEAR(d.waitAttributedFraction, 0.9375, 1e-12);

  constexpr std::size_t kWaitBlock = 7 * sizeof(double) +
                                     2 * sizeof(std::int32_t) +
                                     sizeof(std::uint8_t);
  auto legacy = frame;
  legacy.resize(legacy.size() - kWaitBlock);
  const auto old = steer::decodeTelemetry(legacy);
  EXPECT_EQ(old.step, 50u);
  EXPECT_NEAR(old.mlups, 12.5, 1e-12);
  EXPECT_EQ(old.waitBlamedRank, -1);
  EXPECT_EQ(old.waitStragglerRank, -1);
  EXPECT_EQ(old.waitAttributedFraction, 0.0);
}

// --- chrome trace flow / instant / drop markers ------------------------------

TEST(ChromeTrace, EmitsFlowArrowsInstantsAndDropMarker) {
  telemetry::RankTrace rt0;
  rt0.rank = 0;
  rt0.dropped = 3;
  rt0.events = {
      {100, "driver.step", telemetry::Category::kStep,
       telemetry::SpanPhase::kBegin, 0},
      {150, "halo.flow", telemetry::Category::kHaloSend,
       telemetry::SpanPhase::kFlowStart, 0x2a},
      {200, "halo.flow", telemetry::Category::kHaloRecvWait,
       telemetry::SpanPhase::kFlowEnd, 0x2a},
      {250, "note", telemetry::Category::kOther,
       telemetry::SpanPhase::kInstant, 0},
      {300, "driver.step", telemetry::Category::kStep,
       telemetry::SpanPhase::kEnd, 0},
  };
  const std::string json = telemetry::chromeTraceJson({rt0});

  util::JsonValue doc;
  ASSERT_NO_THROW(doc = util::parseJson(json)) << json;
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  int flowStarts = 0, flowEnds = 0, instants = 0;
  bool sawDropMarker = false;
  for (const auto& e : events->array) {
    const std::string ph = e.stringOr("ph", "");
    if (ph == "s") {
      ++flowStarts;
      EXPECT_EQ(e.stringOr("id", ""), "0x2a");
    } else if (ph == "f") {
      ++flowEnds;
      EXPECT_EQ(e.stringOr("id", ""), "0x2a");
      EXPECT_EQ(e.stringOr("bp", ""), "e");
    } else if (ph == "i") {
      ++instants;
      if (e.stringOr("name", "") == "trace.dropped") {
        sawDropMarker = true;
        const auto* args = e.find("args");
        ASSERT_NE(args, nullptr);
        EXPECT_EQ(args->numberOr("dropped", 0), 3.0);
      }
    }
  }
  EXPECT_EQ(flowStarts, 1);
  EXPECT_EQ(flowEnds, 1);
  EXPECT_EQ(instants, 2);  // the note + the drop marker
  EXPECT_TRUE(sawDropMarker);
}

// --- flight recorder ---------------------------------------------------------

TEST(FlightRecorder, RingsAreBounded) {
  telemetry::FlightRecorder rec;
  telemetry::FlightRecorder::Config cfg;
  cfg.keepWindows = 4;
  cfg.keepAnnotations = 3;
  rec.configure(cfg);
  for (int i = 0; i < 10; ++i) {
    telemetry::FlightWindow w;
    w.step = static_cast<std::uint64_t>(i);
    rec.captureWindow(std::move(w));
    rec.note("note " + std::to_string(i));
  }
  const auto windows = rec.windows();
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_EQ(windows.front().step, 6u);  // oldest retained
  EXPECT_EQ(windows.back().step, 9u);
  const auto notes = rec.annotations();
  ASSERT_EQ(notes.size(), 3u);
  EXPECT_EQ(notes.back().what, "note 9");
}

TEST(FlightRecorder, RegistryFlushWritesRenderableBundle) {
  const std::string dir = "/tmp/hemo_test_postmortem_unit";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  telemetry::FlightRecorder rec;
  rec.setRank(0);
  telemetry::Tracer tracer(64);
  tracer.begin(telemetry::Category::kStep, "driver.step");
  tracer.end(telemetry::Category::kStep, "driver.step");
  telemetry::FlightWindow w;
  w.step = 12;
  w.local.waitLateSenderSeconds = 0.5;
  w.local.waitMeasuredSeconds = 0.5;
  w.local.waitBlamedRank = 1;
  w.local.waitBlamedSeconds = 0.5;
  w.aggregate = w.local;
  w.aggregate.waitStragglerRank = 1;
  w.aggregate.waitDominantCause =
      static_cast<std::uint8_t>(WaitCause::kLateSender);
  w.sentinel.valid = 1;
  w.sentinel.minRho = 0.99;
  w.sentinel.maxRho = 1.01;
  w.metrics.emplace_back("lb.mlups", 42.0);
  rec.captureWindow(std::move(w));
  rec.note("sentinel rollback to checkpointed step 10");

  auto& registry = telemetry::FlightRegistry::instance();
  registry.registerRank(&rec, &tracer);
  registry.arm(dir);
  const std::string path = registry.flush("unit-test", "synthetic bundle");
  registry.disarm();
  registry.unregisterRank(&rec);

  ASSERT_EQ(path, dir + "/postmortem_unit-test.json");
  ASSERT_TRUE(std::filesystem::exists(path));
  ASSERT_TRUE(
      std::filesystem::exists(dir + "/postmortem_unit-test.trace.json"));

  // The bundle must be strict JSON and renderable.
  ASSERT_NO_THROW(util::parseJson(readFile(path)));
  std::string report;
  ASSERT_NO_THROW(report = telemetry::renderPostmortemFile(path));
  EXPECT_NE(report.find("unit-test"), std::string::npos);
  EXPECT_NE(report.find("synthetic bundle"), std::string::npos);
  EXPECT_NE(report.find("-- rank 0"), std::string::npos);
  EXPECT_NE(report.find("late-snd"), std::string::npos);
  EXPECT_NE(report.find("sentinel rollback"), std::string::npos);
  EXPECT_NE(report.find("rank 1"), std::string::npos);  // top contributor
  std::filesystem::remove_all(dir);
}

TEST(FlightRecorder, FlushIsNoOpWhenDisarmed) {
  telemetry::FlightRecorder rec;
  telemetry::Tracer tracer(64);
  auto& registry = telemetry::FlightRegistry::instance();
  registry.disarm();
  registry.registerRank(&rec, &tracer);
  EXPECT_EQ(registry.flush("nope", ""), "");
  registry.unregisterRank(&rec);
}

// --- postmortem renderer edge cases -----------------------------------------

TEST(Postmortem, RejectsMalformedInput) {
  EXPECT_THROW(telemetry::renderPostmortem("not json at all"),
               std::runtime_error);
  EXPECT_THROW(telemetry::renderPostmortem("{}"), std::runtime_error);
  EXPECT_THROW(telemetry::renderPostmortem("{\"schema\":\"other\"}"),
               std::runtime_error);
  EXPECT_THROW(telemetry::renderPostmortemFile("/nonexistent/path.json"),
               std::runtime_error);
}

TEST(Postmortem, RendersZeroWindowBundles) {
  const std::string minimal =
      "{\"schema\":\"hemo-postmortem-1\",\"reason\":\"signal-15\","
      "\"ranks\":[{\"rank\":0,\"windows\":[],\"annotations\":[]}]}";
  std::string report;
  ASSERT_NO_THROW(report = telemetry::renderPostmortem(minimal));
  EXPECT_NE(report.find("signal-15"), std::string::npos);
  EXPECT_NE(report.find("no telemetry windows"), std::string::npos);
}

// --- crash paths -------------------------------------------------------------

void forwardCheckFailure(const char* what) {
  telemetry::FlightRegistry::instance().noteCheckFailure(what);
}

TEST(Postmortem, CheckFailureAnnotatesThreadRecorder) {
  telemetry::FlightRecorder rec;
  telemetry::setThreadFlightRecorder(&rec);
  detail::setCheckFailHook(&forwardCheckFailure);
  EXPECT_THROW(HEMO_CHECK_MSG(false, "synthetic check failure"), CheckError);
  detail::setCheckFailHook(nullptr);
  telemetry::setThreadFlightRecorder(nullptr);

  const auto notes = rec.annotations();
  ASSERT_FALSE(notes.empty());
  EXPECT_NE(notes.back().what.find("HEMO_CHECK"), std::string::npos);
  EXPECT_NE(notes.back().what.find("synthetic check failure"),
            std::string::npos);
}

TEST(Postmortem, BundleWrittenAfterCheckFailureInRankMain) {
  const std::string dir = "/tmp/hemo_test_postmortem_check";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto& registry = telemetry::FlightRegistry::instance();
  registry.arm(dir);

  comm::Runtime rt(2);
  EXPECT_THROW(
      rt.run([&](comm::Communicator& comm) {
        comm.allreduceSum(1.0);
        if (comm.rank() == 0) {
          HEMO_CHECK_MSG(false, "observability check blew up");
        }
        // Rank 1 blocks here until the abort propagation wakes it.
        std::uint64_t buf = 0;
        comm.recvBytesInto(0, 5, &buf, sizeof buf);
      }),
      CheckError);
  registry.disarm();

  const std::string bundle = dir + "/postmortem_rank-exception.json";
  ASSERT_TRUE(std::filesystem::exists(bundle));
  std::string report;
  ASSERT_NO_THROW(report = telemetry::renderPostmortemFile(bundle));
  EXPECT_NE(report.find("rank-exception"), std::string::npos);
  EXPECT_NE(report.find("observability check blew up"), std::string::npos);
  std::filesystem::remove_all(dir);
}

// Needs both the kill hook and the driver-side registry arming (the latter
// is compiled out with telemetry).
#if !defined(HEMO_FAULTINJECT_DISABLED) && !defined(HEMO_TELEMETRY_DISABLED)
TEST(Postmortem, BundleAfterInjectedDriverKillRendersWithoutError) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  const auto lat =
      geometry::voxelize(geometry::makeStraightTube(4.0, 1.0), opt);
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);

  const std::string dir = "/tmp/hemo_test_postmortem_kill";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  core::DriverConfig cfg;
  cfg.lb.tau = 0.8;
  cfg.lb.bodyForce = {1e-5, 0, 0};
  cfg.computeWss = false;
  cfg.visEvery = 0;
  cfg.statusEvery = 2;  // capture flight windows as the run progresses
  cfg.flight.dir = dir;

  util::FaultScope scope(11);
  util::FaultRule r;
  r.site = util::FaultSite::kDriverStep;
  r.action = util::FaultAction::kKill;
  r.rank = 1;
  r.afterHits = 6;
  r.maxFires = 1;
  scope.rule(r);

  {
    comm::Runtime rt(2);
    EXPECT_THROW(rt.run([&](comm::Communicator& comm) {
                   lb::DomainMap domain(lat, part, comm.rank());
                   core::SimulationDriver driver(domain, comm, cfg);
                   driver.run(12);
                 }),
                 util::RankKilledError);
  }
  telemetry::FlightRegistry::instance().disarm();

  const std::string bundle = dir + "/postmortem_rank-exception.json";
  ASSERT_TRUE(std::filesystem::exists(bundle));
  ASSERT_TRUE(
      std::filesystem::exists(dir + "/postmortem_rank-exception.trace.json"));

  // Strict JSON, and hemo_postmortem's renderer accepts it.
  const std::string text = readFile(bundle);
  util::JsonValue doc;
  ASSERT_NO_THROW(doc = util::parseJson(text));
  EXPECT_EQ(doc.stringOr("reason", ""), "rank-exception");
  EXPECT_NE(doc.stringOr("detail", "").find("injected rank death"),
            std::string::npos);
  const auto* ranks = doc.find("ranks");
  ASSERT_NE(ranks, nullptr);
  EXPECT_EQ(ranks->array.size(), 2u);
  // statusEvery=2 ran at least two windows before the step-7 kill.
  bool sawWindow = false;
  for (const auto& rk : ranks->array) {
    const auto* windows = rk.find("windows");
    ASSERT_NE(windows, nullptr);
    if (!windows->array.empty()) sawWindow = true;
  }
  EXPECT_TRUE(sawWindow);

  std::string report;
  ASSERT_NO_THROW(report = telemetry::renderPostmortemFile(bundle));
  EXPECT_NE(report.find("rank-exception"), std::string::npos);
  EXPECT_NE(report.find("-- rank 0"), std::string::npos);
  EXPECT_NE(report.find("-- rank 1"), std::string::npos);
  std::filesystem::remove_all(dir);
}
#endif  // HEMO_FAULTINJECT_DISABLED && HEMO_TELEMETRY_DISABLED

// --- driver integration ------------------------------------------------------

#ifndef HEMO_TELEMETRY_DISABLED
TEST(Observability, DriverPublishesWaitGaugesAndFlightWindows) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  const auto lat =
      geometry::voxelize(geometry::makeStraightTube(4.0, 1.0), opt);
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);

  core::DriverConfig cfg;
  cfg.lb.tau = 0.8;
  cfg.lb.bodyForce = {1e-5, 0, 0};
  cfg.computeWss = false;
  cfg.visEvery = 0;
  cfg.statusEvery = 0;

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    core::SimulationDriver driver(domain, comm, cfg);
    driver.run(6);
    const auto report = driver.computeStepReport();
    EXPECT_GE(report.waitStragglerRank, 0);
    EXPECT_LT(report.waitStragglerRank, 2);
    EXPECT_GE(report.waitAttributedFraction, 0.0);
    EXPECT_LE(report.waitAttributedFraction, 1.0);

    const auto status = driver.computeStatus();
    EXPECT_EQ(status.waitStragglerRank, report.waitStragglerRank);
    EXPECT_GE(status.waitSeconds, 0.0);
  });

  for (int rank = 0; rank < 2; ++rank) {
    auto& t = rt.telemetry(rank);
    const auto& gauges = t.metrics().gauges();
    ASSERT_TRUE(gauges.count("lb.wait.straggler_rank"));
    ASSERT_TRUE(gauges.count("lb.wait.attributed_fraction"));
    ASSERT_TRUE(gauges.count("lb.wait.late_sender_seconds"));
    ASSERT_TRUE(gauges.count("trace.dropped"));
    const auto windows = t.flightRecorder().windows();
    ASSERT_FALSE(windows.empty());
    bool sawMlups = false;
    for (const auto& [name, value] : windows.back().metrics) {
      if (name == "lb.mlups") sawMlups = true;
    }
    EXPECT_TRUE(sawMlups);
  }
}
#endif  // HEMO_TELEMETRY_DISABLED

}  // namespace
}  // namespace hemo
