// Steering protocol + server/client tests: frame round trips, command
// broadcast semantics, typed awaits, and traffic classification.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <thread>

#include "comm/runtime.hpp"
#include "steer/guard.hpp"
#include "steer/protocol.hpp"
#include "steer/server.hpp"
#include "util/check.hpp"

namespace hemo::steer {
namespace {

TEST(Protocol, CommandRoundTripAllFields) {
  Command cmd;
  cmd.type = MsgType::kSetRoi;
  cmd.commandId = 42;
  cmd.camera.position = {1, 2, 3};
  cmd.camera.target = {4, 5, 6};
  cmd.camera.fovYDegrees = 55.5;
  cmd.renderField = 1;
  cmd.visRate = 7;
  cmd.roi = {{1, 2, 3}, {9, 8, 7}};
  cmd.roiLevel = 3;
  cmd.value = 0.85;
  cmd.ioletId = 2;
  cmd.force = {1e-5, 0, -1e-5};

  const auto back = decodeCommand(encodeCommand(cmd));
  EXPECT_EQ(static_cast<int>(back.type), static_cast<int>(cmd.type));
  EXPECT_EQ(back.commandId, 42u);
  EXPECT_EQ(back.camera.position, cmd.camera.position);
  EXPECT_EQ(back.camera.target, cmd.camera.target);
  EXPECT_DOUBLE_EQ(back.camera.fovYDegrees, 55.5);
  EXPECT_EQ(back.renderField, 1);
  EXPECT_EQ(back.visRate, 7);
  EXPECT_EQ(back.roi, cmd.roi);
  EXPECT_EQ(back.roiLevel, 3);
  EXPECT_DOUBLE_EQ(back.value, 0.85);
  EXPECT_EQ(back.ioletId, 2);
  EXPECT_EQ(back.force, cmd.force);
}

TEST(Protocol, StatusRoundTrip) {
  StatusReport s;
  s.step = 12345;
  s.totalSites = 999;
  s.totalMass = 1000.5;
  s.maxSpeed = 0.07;
  s.loadImbalance = 1.23;
  s.stepsPerSecond = 88.0;
  s.etaSeconds = 17.5;
  s.consistencyOk = 0;
  s.paused = 1;
  const auto back = decodeStatus(encodeStatus(s));
  EXPECT_EQ(back.step, 12345u);
  EXPECT_EQ(back.totalSites, 999u);
  EXPECT_DOUBLE_EQ(back.totalMass, 1000.5);
  EXPECT_DOUBLE_EQ(back.maxSpeed, 0.07);
  EXPECT_DOUBLE_EQ(back.loadImbalance, 1.23);
  EXPECT_EQ(back.consistencyOk, 0);
  EXPECT_EQ(back.paused, 1);
}

TEST(Protocol, ImageAndRoiRoundTrip) {
  ImageFrame f;
  f.step = 10;
  f.width = 2;
  f.height = 1;
  f.rgb = {1, 2, 3, 4, 5, 6};
  const auto fb = decodeImage(encodeImage(f));
  EXPECT_EQ(fb.width, 2);
  EXPECT_EQ(fb.rgb, f.rgb);

  RoiData roi;
  roi.step = 11;
  roi.level = 4;
  multires::OctreeNode node;
  node.key = 77;
  node.count = 3;
  node.meanScalar = 1.5f;
  roi.nodes = {node};
  const auto rb = decodeRoi(encodeRoi(roi));
  EXPECT_EQ(rb.level, 4);
  ASSERT_EQ(rb.nodes.size(), 1u);
  EXPECT_EQ(rb.nodes[0].key, 77u);
  EXPECT_FLOAT_EQ(rb.nodes[0].meanScalar, 1.5f);
}

TEST(Protocol, FrameTypeTagIsFirstByte) {
  EXPECT_EQ(static_cast<int>(frameType(encodeAck(5))),
            static_cast<int>(MsgType::kAck));
  Command cmd;
  cmd.type = MsgType::kPause;
  EXPECT_EQ(static_cast<int>(frameType(encodeCommand(cmd))),
            static_cast<int>(MsgType::kPause));
}

TEST(Server, BroadcastsCommandsToAllRanks) {
  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  SteeringClient client(clientEnd);
  Command pause;
  pause.type = MsgType::kPause;
  client.send(pause);
  Command tau;
  tau.type = MsgType::kSetTau;
  tau.value = 0.9;
  client.send(tau);

  comm::Runtime rt(4);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    SteeringServer server(comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    const auto cmds = server.poll(comm);
    // Every rank sees both commands, in order.
    ASSERT_EQ(cmds.size(), 2u);
    EXPECT_EQ(static_cast<int>(cmds[0].type),
              static_cast<int>(MsgType::kPause));
    EXPECT_EQ(static_cast<int>(cmds[1].type),
              static_cast<int>(MsgType::kSetTau));
    EXPECT_DOUBLE_EQ(cmds[1].value, 0.9);
    // A second poll with nothing pending returns empty everywhere.
    EXPECT_TRUE(server.poll(comm).empty());
  });
}

TEST(Server, ResponsesReachTheClient) {
  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  SteeringClient client(clientEnd);
  comm::Runtime rt(2);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    SteeringServer server(comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    StatusReport s;
    s.step = 5;
    server.sendStatus(comm, s);  // no-op on rank 1
    ImageFrame f;
    f.step = 5;
    f.width = 1;
    f.height = 1;
    f.rgb = {9, 9, 9};
    server.sendImage(comm, f);
    server.sendAck(comm, 77);
  });
  // Typed awaits filter by type regardless of arrival order.
  const auto ack = client.awaitAck();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(*ack, 77u);
  const auto status = client.awaitStatus();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->step, 5u);
  const auto image = client.awaitImage();
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(image->rgb.size(), 3u);
}

TEST(Server, SteerTrafficIsClassified) {
  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  SteeringClient client(clientEnd);
  Command c;
  c.type = MsgType::kRequestStatus;
  client.send(c);
  comm::Runtime rt(3);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    SteeringServer server(comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    server.poll(comm);
  });
  EXPECT_GT(rt.totalCounters().of(comm::Traffic::kSteer).bytesSent, 0u);
}

TEST(Server, ReceivedSteerBytesAreCountedSymmetrically) {
  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  SteeringClient client(clientEnd);
  Command c;
  c.type = MsgType::kPause;
  client.send(c);
  c.type = MsgType::kResume;
  client.send(c);
  comm::Runtime rt(2);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    SteeringServer server(comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    server.poll(comm);
  });
  // Rank 0 drained two command frames off the channel: both the message
  // count and the payload bytes must appear on the receive side of kSteer.
  const auto& steer = rt.counters(0).of(comm::Traffic::kSteer);
  EXPECT_EQ(steer.messagesReceived, 2u);
  EXPECT_GT(steer.bytesReceived, 0u);
  // Non-master ranks see only the one broadcast, not the channel frames.
  EXPECT_EQ(rt.counters(1).of(comm::Traffic::kSteer).messagesReceived, 1u);
}

TEST(Client, AckRoundTripFeedsTheRttHistogram) {
  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  SteeringClient client(clientEnd);
  Command c;
  c.type = MsgType::kPause;
  const std::uint32_t id1 = client.send(c);
  const std::uint32_t id2 = client.send(c);
  EXPECT_NE(id1, id2);
  EXPECT_EQ(client.roundTripHistogram().count(), 0u);
  comm::Runtime rt(2);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    SteeringServer server(comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    server.poll(comm);
    server.sendAck(comm, id1);
    server.sendAck(comm, id2);
    server.sendAck(comm, 9999);  // unknown id: ack passes, no RTT sample
  });
  ASSERT_TRUE(client.awaitAck().has_value());
  ASSERT_TRUE(client.awaitAck().has_value());
  ASSERT_TRUE(client.awaitAck().has_value());
  const auto& rtt = client.roundTripHistogram();
  EXPECT_EQ(rtt.count(), 2u);
  EXPECT_GT(rtt.min(), 0.0);
  EXPECT_GE(rtt.p95(), rtt.p50());
}

TEST(Protocol, TelemetryReportRoundTrip) {
  telemetry::StepReport r;
  r.step = 77;
  r.ranks = 4;
  r.sites = 12345;
  r.stepsCovered = 25;
  r.wallSeconds = 1.5;
  r.mlups = 3.25;
  r.collideSeconds = 0.7;
  r.streamSeconds = 0.3;
  r.commSeconds = 0.2;
  r.visSeconds = 0.1;
  r.loadImbalance = 1.08;
  r.commHiddenFraction = 0.9;
  for (int c = 0; c < telemetry::kReportTrafficClasses; ++c) {
    r.bytesSent[c] = static_cast<std::uint64_t>(c) * 1000;
    r.msgsSent[c] = static_cast<std::uint64_t>(c);
  }
  const auto frame = encodeTelemetry(r);
  EXPECT_EQ(static_cast<int>(frameType(frame)),
            static_cast<int>(MsgType::kTelemetry));
  const auto back = decodeTelemetry(frame);
  EXPECT_EQ(back.step, 77u);
  EXPECT_EQ(back.ranks, 4u);
  EXPECT_EQ(back.sites, 12345u);
  EXPECT_EQ(back.stepsCovered, 25u);
  EXPECT_DOUBLE_EQ(back.wallSeconds, 1.5);
  EXPECT_DOUBLE_EQ(back.mlups, 3.25);
  EXPECT_DOUBLE_EQ(back.collideSeconds, 0.7);
  EXPECT_DOUBLE_EQ(back.streamSeconds, 0.3);
  EXPECT_DOUBLE_EQ(back.commSeconds, 0.2);
  EXPECT_DOUBLE_EQ(back.visSeconds, 0.1);
  EXPECT_DOUBLE_EQ(back.loadImbalance, 1.08);
  EXPECT_DOUBLE_EQ(back.commHiddenFraction, 0.9);
  for (int c = 0; c < telemetry::kReportTrafficClasses; ++c) {
    EXPECT_EQ(back.bytesSent[c], r.bytesSent[c]);
    EXPECT_EQ(back.msgsSent[c], r.msgsSent[c]);
  }
}

TEST(Server, TelemetryStreamReachesTheClient) {
  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  SteeringClient client(clientEnd);
  comm::Runtime rt(2);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    SteeringServer server(comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    telemetry::StepReport r;
    r.step = 40;
    r.ranks = 2;
    r.mlups = 5.5;
    server.sendTelemetry(comm, r);  // no-op on rank 1
    StatusReport s;
    s.step = 40;
    server.sendStatus(comm, s);
  });
  // Typed await skips past the interleaved status frame.
  const auto report = client.awaitTelemetry();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->step, 40u);
  EXPECT_DOUBLE_EQ(report->mlups, 5.5);
  const auto status = client.awaitStatus();
  ASSERT_TRUE(status.has_value());
}

TEST(Protocol, RejectRoundTripBothTypesAllReasons) {
  const RejectReason reasons[] = {
      RejectReason::kNone,           RejectReason::kTauUnstable,
      RejectReason::kNonFinite,      RejectReason::kValueOutOfRange,
      RejectReason::kIoletOutOfRange, RejectReason::kRoiOutsideLattice,
      RejectReason::kDivergence};
  const MsgType types[] = {MsgType::kReject, MsgType::kRejectedAfterRollback};
  for (const auto type : types) {
    for (const auto reason : reasons) {
      Reject rej;
      rej.type = type;
      rej.commandId = 0xDEADu;
      rej.reason = reason;
      const auto frame = encodeReject(rej);
      EXPECT_EQ(static_cast<int>(frameType(frame)), static_cast<int>(type));
      const auto back = decodeReject(frame);
      EXPECT_EQ(static_cast<int>(back.type), static_cast<int>(type));
      EXPECT_EQ(back.commandId, 0xDEADu);
      EXPECT_EQ(static_cast<int>(back.reason), static_cast<int>(reason));
      EXPECT_NE(rejectReasonName(reason), nullptr);
    }
  }
}

TEST(Protocol, StatusCarriesConsistencyStep) {
  StatusReport s;
  s.step = 200;
  s.consistencyOk = 0;
  s.consistencyStep = 195;  // verdict computed at an earlier sentinel window
  const auto back = decodeStatus(encodeStatus(s));
  EXPECT_EQ(back.consistencyOk, 0);
  EXPECT_EQ(back.consistencyStep, 195u);
}

// Trailing bytes appended to a status frame after the original layout:
// the wait-state block (i32 straggler + u8 cause + f64 seconds) behind
// the consistencyStep u64. Older encoders stop at earlier boundaries.
constexpr std::size_t kStatusWaitBlock =
    sizeof(std::int32_t) + sizeof(std::uint8_t) + sizeof(double);

TEST(Protocol, StatusDecodeIsWireBackCompatible) {
  // Frames from older builds end at earlier field boundaries: before the
  // wait-state block, and before that at consistencyStep. The decoder
  // must accept both generations and default the missing fields.
  StatusReport s;
  s.step = 321;
  s.consistencyStep = 321;
  s.waitStragglerRank = 3;
  s.waitSeconds = 0.5;
  auto frame = encodeStatus(s);

  frame.resize(frame.size() - kStatusWaitBlock);  // pre-wait-state build
  const auto mid = decodeStatus(frame);
  EXPECT_EQ(mid.step, 321u);
  EXPECT_EQ(mid.consistencyStep, 321u);
  EXPECT_EQ(mid.waitStragglerRank, -1);
  EXPECT_EQ(mid.waitSeconds, 0.0);

  frame.resize(frame.size() - sizeof(std::uint64_t));  // pre-consistencyStep
  const auto old = decodeStatus(frame);
  EXPECT_EQ(old.step, 321u);
  EXPECT_EQ(old.consistencyStep, 321u);
  EXPECT_EQ(old.waitStragglerRank, -1);
}

TEST(Protocol, OversizedVectorCountIsATypedError) {
  // Patch an image frame's rgb count (at tag u8 + step u64 + w i32 + h i32)
  // to a value whose byte size would wrap or exhaust memory. The decoder
  // must throw CheckError before allocating anything.
  ImageFrame f;
  f.step = 1;
  f.width = 1;
  f.height = 1;
  f.rgb = {1, 2, 3};
  auto frame = encodeImage(f);
  const std::uint64_t huge = std::numeric_limits<std::uint64_t>::max() / 2;
  std::memcpy(frame.data() + 1 + 8 + 4 + 4, &huge, sizeof(huge));
  EXPECT_THROW(decodeImage(frame), CheckError);
}

TEST(Protocol, TruncatedFramesYieldNulloptNotCrash) {
  Command cmd;
  cmd.type = MsgType::kSetTau;
  cmd.value = 0.9;
  const auto cmdFrame = encodeCommand(cmd);
  for (std::size_t n = 0; n < cmdFrame.size(); ++n) {
    const std::vector<std::byte> prefix(cmdFrame.begin(),
                                        cmdFrame.begin() + n);
    EXPECT_FALSE(tryDecodeCommand(prefix).has_value()) << "prefix " << n;
  }
  StatusReport s;
  s.step = 9;
  const auto statusFrame = encodeStatus(s);
  // Every prefix must fail except the legacy field boundaries: the frame
  // minus the wait-state block, and minus the consistencyStep u64 too.
  const std::size_t preWait = statusFrame.size() - kStatusWaitBlock;
  const std::size_t preConsistency = preWait - sizeof(std::uint64_t);
  for (std::size_t n = 0; n < statusFrame.size(); ++n) {
    const std::vector<std::byte> prefix(statusFrame.begin(),
                                        statusFrame.begin() + n);
    const bool legacyBoundary = n == preWait || n == preConsistency;
    EXPECT_EQ(tryDecodeStatus(prefix).has_value(), legacyBoundary)
        << "prefix " << n;
  }
}

TEST(Protocol, FuzzedFramesNeverCrashTheDecoders) {
  std::mt19937 rng(20260805u);  // seeded: failures are reproducible
  std::uniform_int_distribution<int> byteDist(0, 255);
  auto decodeAll = [](const std::vector<std::byte>& frame) {
    // Throwing decoders are exercised under try/catch: a typed CheckError
    // is the accepted outcome for garbage; anything else (OOB, bad_alloc,
    // crash) fails the test by escaping or killing the process.
    (void)tryDecodeCommand(frame);
    (void)tryDecodeStatus(frame);
    const auto tryOne = [&](auto&& decode) {
      try {
        (void)decode(frame);
      } catch (const CheckError&) {
      }
    };
    tryOne([](const auto& f) { return decodeReject(f); });
    tryOne([](const auto& f) { return decodeImage(f); });
    tryOne([](const auto& f) { return decodeRoi(f); });
    tryOne([](const auto& f) { return decodeObservable(f); });
    tryOne([](const auto& f) { return decodeTelemetry(f); });
    tryOne([](const auto& f) { return decodeHeartbeatSeq(f); });
  };

  // Mode 1: single-byte mutations of valid frames (keeps structure mostly
  // intact so deep decoder paths are reached).
  Command cmd;
  cmd.type = MsgType::kSetBodyForce;
  cmd.force = {1e-4, 0, 0};
  std::vector<std::vector<std::byte>> seeds;
  seeds.push_back(encodeCommand(cmd));
  seeds.push_back(encodeStatus(StatusReport{}));
  seeds.push_back(encodeReject(Reject{}));
  ImageFrame img;
  img.width = 2;
  img.height = 2;
  img.rgb.assign(12, 7);
  seeds.push_back(encodeImage(img));
  RoiData roi;
  roi.nodes.resize(3);
  seeds.push_back(encodeRoi(roi));
  for (const auto& seed : seeds) {
    for (int trial = 0; trial < 200; ++trial) {
      auto mutated = seed;
      const auto pos = static_cast<std::size_t>(rng() % mutated.size());
      mutated[pos] = static_cast<std::byte>(byteDist(rng));
      decodeAll(mutated);
    }
  }

  // Mode 2: pure random frames, 0..512 bytes.
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<std::byte> frame(rng() % 513);
    for (auto& b : frame) b = static_cast<std::byte>(byteDist(rng));
    decodeAll(frame);
  }
}

TEST(Guard, MinStableTauMatchesTheHeuristic) {
  EXPECT_DOUBLE_EQ(minStableTau(0.0), 0.5);
  EXPECT_DOUBLE_EQ(minStableTau(0.3), 0.5 + 1.5 * 0.09);
  // The documented workloads (tau 0.8/0.9) clear the default ceiling.
  EXPECT_LT(minStableTau(0.3), 0.8);
}

TEST(Guard, ValidCommandsPass) {
  GuardConfig cfg;
  GuardContext ctx;
  ctx.numIolets = 2;
  ctx.lattice = BoxI{{0, 0, 0}, {32, 32, 32}};
  Command cmd;
  cmd.type = MsgType::kSetTau;
  cmd.value = 0.8;
  EXPECT_EQ(static_cast<int>(validateCommand(cmd, cfg, ctx)),
            static_cast<int>(RejectReason::kNone));
  cmd.type = MsgType::kSetIoletDensity;
  cmd.ioletId = 1;
  cmd.value = 1.02;
  EXPECT_EQ(static_cast<int>(validateCommand(cmd, cfg, ctx)),
            static_cast<int>(RejectReason::kNone));
  cmd.type = MsgType::kSetRoi;
  cmd.roi = BoxI{{0, 0, 0}, {64, 64, 64}};  // oversized but overlapping: OK
  EXPECT_EQ(static_cast<int>(validateCommand(cmd, cfg, ctx)),
            static_cast<int>(RejectReason::kNone));
  cmd.roi = BoxI{};  // empty ROI means "reset"; always allowed
  EXPECT_EQ(static_cast<int>(validateCommand(cmd, cfg, ctx)),
            static_cast<int>(RejectReason::kNone));
  // Non-mutating commands are never rejected.
  cmd.type = MsgType::kPause;
  cmd.value = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(static_cast<int>(validateCommand(cmd, cfg, ctx)),
            static_cast<int>(RejectReason::kNone));
}

TEST(Guard, EachViolationMapsToItsReason) {
  GuardConfig cfg;
  GuardContext ctx;
  ctx.numIolets = 2;
  ctx.lattice = BoxI{{0, 0, 0}, {32, 32, 32}};
  const auto expect = [&](const Command& cmd, RejectReason want) {
    EXPECT_EQ(static_cast<int>(validateCommand(cmd, cfg, ctx)),
              static_cast<int>(want))
        << rejectReasonName(want);
  };
  Command cmd;
  cmd.type = MsgType::kSetTau;
  cmd.value = 0.55;  // below minStableTau(0.3) = 0.635
  expect(cmd, RejectReason::kTauUnstable);
  cmd.value = 50.0;
  expect(cmd, RejectReason::kTauUnstable);
  cmd.value = std::numeric_limits<double>::quiet_NaN();
  expect(cmd, RejectReason::kNonFinite);

  cmd = Command{};
  cmd.type = MsgType::kSetBodyForce;
  cmd.force = {0, std::numeric_limits<double>::infinity(), 0};
  expect(cmd, RejectReason::kNonFinite);
  cmd.force = {0.5, 0, 0};  // above maxBodyForce
  expect(cmd, RejectReason::kValueOutOfRange);

  cmd = Command{};
  cmd.type = MsgType::kSetIoletDensity;
  cmd.ioletId = 99;
  cmd.value = 1.0;
  expect(cmd, RejectReason::kIoletOutOfRange);
  cmd.ioletId = -1;
  expect(cmd, RejectReason::kIoletOutOfRange);
  cmd.ioletId = 0;
  cmd.value = -5.0;
  expect(cmd, RejectReason::kValueOutOfRange);

  cmd = Command{};
  cmd.type = MsgType::kSetIoletVelocity;
  cmd.ioletId = 0;
  cmd.force = {0.9, 0, 0};  // above maxIoletSpeed
  expect(cmd, RejectReason::kValueOutOfRange);

  cmd = Command{};
  cmd.type = MsgType::kSetRoi;
  cmd.roi = BoxI{{100, 100, 100}, {120, 120, 120}};  // fully outside
  expect(cmd, RejectReason::kRoiOutsideLattice);

  // Disabling the guard waves everything through.
  cfg.enabled = false;
  cmd.type = MsgType::kSetTau;
  cmd.value = 0.501;
  expect(cmd, RejectReason::kNone);
}

TEST(Server, RejectReachesTheClient) {
  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  SteeringClient client(clientEnd);
  Command cmd;
  cmd.type = MsgType::kSetTau;
  cmd.value = 0.1;
  const std::uint32_t id = client.send(cmd);
  comm::Runtime rt(2);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    SteeringServer server(comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    const auto cmds = server.poll(comm);
    ASSERT_EQ(cmds.size(), 1u);
    StatusReport s;
    s.step = 3;
    server.sendStatus(comm, s);  // interleaved frame; await must skip it
    Reject rej;
    rej.commandId = cmds[0].commandId;
    rej.reason = RejectReason::kTauUnstable;
    server.sendReject(comm, rej);  // no-op on rank 1
  });
  const auto rej = client.awaitReject();
  ASSERT_TRUE(rej.has_value());
  EXPECT_EQ(rej->commandId, id);
  EXPECT_EQ(static_cast<int>(rej->reason),
            static_cast<int>(RejectReason::kTauUnstable));
  const auto status = client.awaitStatus();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->step, 3u);
}

TEST(Client, EofYieldsNullopt) {
  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  SteeringClient client(clientEnd);
  serverEnd.close();
  EXPECT_FALSE(client.awaitStatus().has_value());
}

}  // namespace
}  // namespace hemo::steer
