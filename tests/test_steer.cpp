// Steering protocol + server/client tests: frame round trips, command
// broadcast semantics, typed awaits, and traffic classification.

#include <gtest/gtest.h>

#include <thread>

#include "comm/runtime.hpp"
#include "steer/protocol.hpp"
#include "steer/server.hpp"

namespace hemo::steer {
namespace {

TEST(Protocol, CommandRoundTripAllFields) {
  Command cmd;
  cmd.type = MsgType::kSetRoi;
  cmd.commandId = 42;
  cmd.camera.position = {1, 2, 3};
  cmd.camera.target = {4, 5, 6};
  cmd.camera.fovYDegrees = 55.5;
  cmd.renderField = 1;
  cmd.visRate = 7;
  cmd.roi = {{1, 2, 3}, {9, 8, 7}};
  cmd.roiLevel = 3;
  cmd.value = 0.85;
  cmd.ioletId = 2;
  cmd.force = {1e-5, 0, -1e-5};

  const auto back = decodeCommand(encodeCommand(cmd));
  EXPECT_EQ(static_cast<int>(back.type), static_cast<int>(cmd.type));
  EXPECT_EQ(back.commandId, 42u);
  EXPECT_EQ(back.camera.position, cmd.camera.position);
  EXPECT_EQ(back.camera.target, cmd.camera.target);
  EXPECT_DOUBLE_EQ(back.camera.fovYDegrees, 55.5);
  EXPECT_EQ(back.renderField, 1);
  EXPECT_EQ(back.visRate, 7);
  EXPECT_EQ(back.roi, cmd.roi);
  EXPECT_EQ(back.roiLevel, 3);
  EXPECT_DOUBLE_EQ(back.value, 0.85);
  EXPECT_EQ(back.ioletId, 2);
  EXPECT_EQ(back.force, cmd.force);
}

TEST(Protocol, StatusRoundTrip) {
  StatusReport s;
  s.step = 12345;
  s.totalSites = 999;
  s.totalMass = 1000.5;
  s.maxSpeed = 0.07;
  s.loadImbalance = 1.23;
  s.stepsPerSecond = 88.0;
  s.etaSeconds = 17.5;
  s.consistencyOk = 0;
  s.paused = 1;
  const auto back = decodeStatus(encodeStatus(s));
  EXPECT_EQ(back.step, 12345u);
  EXPECT_EQ(back.totalSites, 999u);
  EXPECT_DOUBLE_EQ(back.totalMass, 1000.5);
  EXPECT_DOUBLE_EQ(back.maxSpeed, 0.07);
  EXPECT_DOUBLE_EQ(back.loadImbalance, 1.23);
  EXPECT_EQ(back.consistencyOk, 0);
  EXPECT_EQ(back.paused, 1);
}

TEST(Protocol, ImageAndRoiRoundTrip) {
  ImageFrame f;
  f.step = 10;
  f.width = 2;
  f.height = 1;
  f.rgb = {1, 2, 3, 4, 5, 6};
  const auto fb = decodeImage(encodeImage(f));
  EXPECT_EQ(fb.width, 2);
  EXPECT_EQ(fb.rgb, f.rgb);

  RoiData roi;
  roi.step = 11;
  roi.level = 4;
  multires::OctreeNode node;
  node.key = 77;
  node.count = 3;
  node.meanScalar = 1.5f;
  roi.nodes = {node};
  const auto rb = decodeRoi(encodeRoi(roi));
  EXPECT_EQ(rb.level, 4);
  ASSERT_EQ(rb.nodes.size(), 1u);
  EXPECT_EQ(rb.nodes[0].key, 77u);
  EXPECT_FLOAT_EQ(rb.nodes[0].meanScalar, 1.5f);
}

TEST(Protocol, FrameTypeTagIsFirstByte) {
  EXPECT_EQ(static_cast<int>(frameType(encodeAck(5))),
            static_cast<int>(MsgType::kAck));
  Command cmd;
  cmd.type = MsgType::kPause;
  EXPECT_EQ(static_cast<int>(frameType(encodeCommand(cmd))),
            static_cast<int>(MsgType::kPause));
}

TEST(Server, BroadcastsCommandsToAllRanks) {
  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  SteeringClient client(clientEnd);
  Command pause;
  pause.type = MsgType::kPause;
  client.send(pause);
  Command tau;
  tau.type = MsgType::kSetTau;
  tau.value = 0.9;
  client.send(tau);

  comm::Runtime rt(4);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    SteeringServer server(comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    const auto cmds = server.poll(comm);
    // Every rank sees both commands, in order.
    ASSERT_EQ(cmds.size(), 2u);
    EXPECT_EQ(static_cast<int>(cmds[0].type),
              static_cast<int>(MsgType::kPause));
    EXPECT_EQ(static_cast<int>(cmds[1].type),
              static_cast<int>(MsgType::kSetTau));
    EXPECT_DOUBLE_EQ(cmds[1].value, 0.9);
    // A second poll with nothing pending returns empty everywhere.
    EXPECT_TRUE(server.poll(comm).empty());
  });
}

TEST(Server, ResponsesReachTheClient) {
  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  SteeringClient client(clientEnd);
  comm::Runtime rt(2);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    SteeringServer server(comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    StatusReport s;
    s.step = 5;
    server.sendStatus(comm, s);  // no-op on rank 1
    ImageFrame f;
    f.step = 5;
    f.width = 1;
    f.height = 1;
    f.rgb = {9, 9, 9};
    server.sendImage(comm, f);
    server.sendAck(comm, 77);
  });
  // Typed awaits filter by type regardless of arrival order.
  const auto ack = client.awaitAck();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(*ack, 77u);
  const auto status = client.awaitStatus();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->step, 5u);
  const auto image = client.awaitImage();
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(image->rgb.size(), 3u);
}

TEST(Server, SteerTrafficIsClassified) {
  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  SteeringClient client(clientEnd);
  Command c;
  c.type = MsgType::kRequestStatus;
  client.send(c);
  comm::Runtime rt(3);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    SteeringServer server(comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    server.poll(comm);
  });
  EXPECT_GT(rt.totalCounters().of(comm::Traffic::kSteer).bytesSent, 0u);
}

TEST(Server, ReceivedSteerBytesAreCountedSymmetrically) {
  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  SteeringClient client(clientEnd);
  Command c;
  c.type = MsgType::kPause;
  client.send(c);
  c.type = MsgType::kResume;
  client.send(c);
  comm::Runtime rt(2);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    SteeringServer server(comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    server.poll(comm);
  });
  // Rank 0 drained two command frames off the channel: both the message
  // count and the payload bytes must appear on the receive side of kSteer.
  const auto& steer = rt.counters(0).of(comm::Traffic::kSteer);
  EXPECT_EQ(steer.messagesReceived, 2u);
  EXPECT_GT(steer.bytesReceived, 0u);
  // Non-master ranks see only the one broadcast, not the channel frames.
  EXPECT_EQ(rt.counters(1).of(comm::Traffic::kSteer).messagesReceived, 1u);
}

TEST(Client, AckRoundTripFeedsTheRttHistogram) {
  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  SteeringClient client(clientEnd);
  Command c;
  c.type = MsgType::kPause;
  const std::uint32_t id1 = client.send(c);
  const std::uint32_t id2 = client.send(c);
  EXPECT_NE(id1, id2);
  EXPECT_EQ(client.roundTripHistogram().count(), 0u);
  comm::Runtime rt(2);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    SteeringServer server(comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    server.poll(comm);
    server.sendAck(comm, id1);
    server.sendAck(comm, id2);
    server.sendAck(comm, 9999);  // unknown id: ack passes, no RTT sample
  });
  ASSERT_TRUE(client.awaitAck().has_value());
  ASSERT_TRUE(client.awaitAck().has_value());
  ASSERT_TRUE(client.awaitAck().has_value());
  const auto& rtt = client.roundTripHistogram();
  EXPECT_EQ(rtt.count(), 2u);
  EXPECT_GT(rtt.min(), 0.0);
  EXPECT_GE(rtt.p95(), rtt.p50());
}

TEST(Protocol, TelemetryReportRoundTrip) {
  telemetry::StepReport r;
  r.step = 77;
  r.ranks = 4;
  r.sites = 12345;
  r.stepsCovered = 25;
  r.wallSeconds = 1.5;
  r.mlups = 3.25;
  r.collideSeconds = 0.7;
  r.streamSeconds = 0.3;
  r.commSeconds = 0.2;
  r.visSeconds = 0.1;
  r.loadImbalance = 1.08;
  r.commHiddenFraction = 0.9;
  for (int c = 0; c < telemetry::kReportTrafficClasses; ++c) {
    r.bytesSent[c] = static_cast<std::uint64_t>(c) * 1000;
    r.msgsSent[c] = static_cast<std::uint64_t>(c);
  }
  const auto frame = encodeTelemetry(r);
  EXPECT_EQ(static_cast<int>(frameType(frame)),
            static_cast<int>(MsgType::kTelemetry));
  const auto back = decodeTelemetry(frame);
  EXPECT_EQ(back.step, 77u);
  EXPECT_EQ(back.ranks, 4u);
  EXPECT_EQ(back.sites, 12345u);
  EXPECT_EQ(back.stepsCovered, 25u);
  EXPECT_DOUBLE_EQ(back.wallSeconds, 1.5);
  EXPECT_DOUBLE_EQ(back.mlups, 3.25);
  EXPECT_DOUBLE_EQ(back.collideSeconds, 0.7);
  EXPECT_DOUBLE_EQ(back.streamSeconds, 0.3);
  EXPECT_DOUBLE_EQ(back.commSeconds, 0.2);
  EXPECT_DOUBLE_EQ(back.visSeconds, 0.1);
  EXPECT_DOUBLE_EQ(back.loadImbalance, 1.08);
  EXPECT_DOUBLE_EQ(back.commHiddenFraction, 0.9);
  for (int c = 0; c < telemetry::kReportTrafficClasses; ++c) {
    EXPECT_EQ(back.bytesSent[c], r.bytesSent[c]);
    EXPECT_EQ(back.msgsSent[c], r.msgsSent[c]);
  }
}

TEST(Server, TelemetryStreamReachesTheClient) {
  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  SteeringClient client(clientEnd);
  comm::Runtime rt(2);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    SteeringServer server(comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    telemetry::StepReport r;
    r.step = 40;
    r.ranks = 2;
    r.mlups = 5.5;
    server.sendTelemetry(comm, r);  // no-op on rank 1
    StatusReport s;
    s.step = 40;
    server.sendStatus(comm, s);
  });
  // Typed await skips past the interleaved status frame.
  const auto report = client.awaitTelemetry();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->step, 40u);
  EXPECT_DOUBLE_EQ(report->mlups, 5.5);
  const auto status = client.awaitStatus();
  ASSERT_TRUE(status.has_value());
}

TEST(Client, EofYieldsNullopt) {
  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  SteeringClient client(clientEnd);
  serverEnd.close();
  EXPECT_FALSE(client.awaitStatus().has_value());
}

}  // namespace
}  // namespace hemo::steer
