// Tests for the visualisation substrate: camera/image/transfer algebra,
// ghosted field exchange, trilinear sampling, distributed streamlines
// (including bitwise rank invariance), volume rendering + both compositors,
// in situ tracers and slice LIC.

#include <gtest/gtest.h>

#include <cmath>

#include "comm/runtime.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "partition/partitioners.hpp"
#include "vis/camera.hpp"
#include "vis/lic.hpp"
#include "vis/line_render.hpp"
#include "vis/particles.hpp"
#include "vis/sampler.hpp"
#include "vis/streamlines.hpp"
#include "vis/transfer.hpp"
#include "vis/volume.hpp"

namespace hemo::vis {
namespace {

using geometry::SparseLattice;

// --- camera / image / transfer ------------------------------------------------

TEST(Camera, CentralRayPointsForward) {
  Camera cam;
  cam.position = {0, 0, 5};
  cam.target = {0, 0, 0};
  const Ray r = cam.rayThrough(63, 63, 128, 128);
  EXPECT_NEAR(r.direction.z, -1.0, 0.02);
  EXPECT_NEAR(r.direction.norm(), 1.0, 1e-12);
}

TEST(Camera, CornerRaysDiverge) {
  Camera cam;
  cam.position = {0, 0, 5};
  cam.target = {0, 0, 0};
  const Ray tl = cam.rayThrough(0, 0, 128, 128);
  const Ray br = cam.rayThrough(127, 127, 128, 128);
  EXPECT_LT(tl.direction.x, 0.0);
  EXPECT_GT(tl.direction.y, 0.0);
  EXPECT_GT(br.direction.x, 0.0);
  EXPECT_LT(br.direction.y, 0.0);
}

TEST(Rgba, FrontToBackAccumulationMatchesOver) {
  // Accumulating a then b front-to-back == placing a over b.
  const Rgba a{0.2f, 0.1f, 0.0f, 0.4f};  // premultiplied
  const Rgba b{0.0f, 0.3f, 0.3f, 0.6f};
  Rgba acc;
  acc.accumulate(a);
  acc.accumulate(b);
  Rgba over = b;
  over.under(a);
  EXPECT_NEAR(acc.r, over.r, 1e-6);
  EXPECT_NEAR(acc.g, over.g, 1e-6);
  EXPECT_NEAR(acc.b, over.b, 1e-6);
  EXPECT_NEAR(acc.a, over.a, 1e-6);
}

TEST(Rgba, OpaqueFrontBlocksBack) {
  Rgba acc;
  acc.accumulate(Rgba{1.f, 0.f, 0.f, 1.f});
  acc.accumulate(Rgba{0.f, 1.f, 0.f, 1.f});
  EXPECT_FLOAT_EQ(acc.r, 1.f);
  EXPECT_FLOAT_EQ(acc.g, 0.f);
  EXPECT_FLOAT_EQ(acc.a, 1.f);
}

TEST(TransferFunction, ClampsAndInterpolates) {
  TransferFunction tf({{0.f, 0.f, 0.f, 0.f, 0.f}, {1.f, 1.f, 0.f, 0.f, 1.f}});
  EXPECT_FLOAT_EQ(tf.sample(-5.f).a, 0.f);
  EXPECT_FLOAT_EQ(tf.sample(2.f).a, 1.f);
  const Rgba mid = tf.sample(0.5f);
  EXPECT_NEAR(mid.a, 0.5f, 1e-6);
  EXPECT_NEAR(mid.r, 0.25f, 1e-6);  // premultiplied: 0.5 colour × 0.5 alpha
}

TEST(TransferFunction, RejectsNonAscendingPoints) {
  EXPECT_THROW(TransferFunction({{1.f, 0, 0, 0, 0}, {0.f, 0, 0, 0, 0}}),
               CheckError);
}

TEST(Image, ToRgb8CompositesBackground) {
  Image img(2, 1);
  img.at(0, 0) = Rgba{1.f, 0.f, 0.f, 1.f};
  const auto rgb = img.toRgb8(0.5f);
  EXPECT_EQ(rgb[0], 255);  // opaque red pixel
  EXPECT_EQ(rgb[3], 128);  // empty pixel shows the background
}

// --- fixtures -------------------------------------------------------------------

SparseLattice tubeLattice(double voxel = 0.25) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = voxel;
  return geometry::voxelize(geometry::makeStraightTube(6.0, 1.0), opt);
}

partition::Partition makePartition(const SparseLattice& lat, int parts) {
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  return kway.partition(graph, parts);
}

/// Synthetic macro fields: u = fn(world), rho = 1.
lb::MacroFields syntheticField(
    const lb::DomainMap& domain,
    const std::function<Vec3d(const Vec3d&)>& fn) {
  lb::MacroFields macro;
  macro.rho.assign(domain.numOwned(), 1.0);
  macro.u.resize(domain.numOwned());
  for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
    macro.u[l] = fn(domain.lattice().siteWorld(domain.globalOf(l)));
  }
  return macro;
}

// --- ghosted field / sampler ------------------------------------------------------

TEST(GhostedField, GhostValuesMatchOwners) {
  const auto lat = tubeLattice();
  const auto part = makePartition(lat, 4);
  comm::Runtime rt(4);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    auto macro = syntheticField(
        domain, [](const Vec3d& w) { return Vec3d{w.x, w.y, w.z}; });
    GhostedField field(domain, comm, 1);
    field.refresh(macro, comm);
    // Every ghost value equals the analytic field at that site.
    int checked = 0;
    for (std::uint64_t g = 0; g < lat.numFluidSites(); ++g) {
      if (domain.ownerOf(g) == domain.rank()) continue;
      const auto u = field.velocityAt(g);
      if (!u) continue;  // not in this rank's ghost ring
      const Vec3d w = lat.siteWorld(g);
      EXPECT_NEAR((*u - Vec3d{w.x, w.y, w.z}).norm(), 0.0, 1e-12);
      ++checked;
    }
    EXPECT_GT(checked, 0);
  });
}

TEST(GhostedField, TwoRingsCoverMoreThanOne) {
  const auto lat = tubeLattice();
  const auto part = makePartition(lat, 4);
  comm::Runtime rt(4);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    GhostedField one(domain, comm, 1);
    GhostedField two(domain, comm, 2);
    EXPECT_GT(two.ghostCount(), one.ghostCount());
  });
}

TEST(Sampler, ExactAtSiteCentreAndInterpolatedBetween) {
  const auto lat = tubeLattice();
  partition::Partition part;
  part.numParts = 1;
  part.partOfSite.assign(lat.numFluidSites(), 0);
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, 0);
    auto macro = syntheticField(
        domain, [](const Vec3d& w) { return Vec3d{w.x, 0, 0}; });
    GhostedField field(domain, comm, 1);
    field.refresh(macro, comm);
    VelocitySampler sampler(field);
    // A deep-interior site: the sampled x-velocity == analytic x (linear
    // field reproduced exactly by trilinear interpolation).
    const Vec3d probe{3.0, 0.0, 0.0};
    const auto u = sampler.sample(probe);
    ASSERT_TRUE(u.has_value());
    EXPECT_NEAR(u->x, 3.0, 1e-9);
    // Outside the fluid: nullopt.
    EXPECT_FALSE(sampler.sample(Vec3d{3.0, 1.6, 0.0}).has_value());
  });
}

// --- streamlines -------------------------------------------------------------------

TEST(DiscSeeds, LieOnDiscDeterministically) {
  const auto seeds = discSeeds({1, 2, 3}, {0, 0, 1}, 2.0, 64);
  ASSERT_EQ(seeds.size(), 64u);
  for (const auto& s : seeds) {
    EXPECT_NEAR(s.z, 3.0, 1e-12);                      // on the plane
    EXPECT_LE((s - Vec3d{1, 2, 3}).norm(), 2.0 + 1e-9);  // inside radius
  }
  EXPECT_EQ(discSeeds({1, 2, 3}, {0, 0, 1}, 2.0, 64)[10], seeds[10]);
}

TEST(Streamlines, UniformFlowGivesStraightMonotoneLines) {
  const auto lat = tubeLattice();
  const auto part = makePartition(lat, 1);
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, 0);
    auto macro = syntheticField(
        domain, [](const Vec3d&) { return Vec3d{0.01, 0, 0}; });
    GhostedField field(domain, comm, 2);
    field.refresh(macro, comm);
    StreamlineParams params;
    params.maxVertices = 300;
    const auto lines = traceStreamlines(
        comm, field, {{0.5, 0, 0}, {0.5, 0.4, 0.2}}, params);
    ASSERT_EQ(lines.size(), 2u);
    for (const auto& line : lines) {
      ASSERT_GT(line.vertices.size(), 20u);
      for (std::size_t v = 1; v < line.vertices.size(); ++v) {
        EXPECT_GT(line.vertices[v].x, line.vertices[v - 1].x);
        EXPECT_NEAR(line.vertices[v].y, line.vertices[0].y, 1e-4);
        EXPECT_NEAR(line.vertices[v].z, line.vertices[0].z, 1e-4);
      }
    }
  });
}

std::vector<Polyline> traceOnRanks(const SparseLattice& lat, int ranks,
                                   TraceStats* stats = nullptr) {
  const auto part = makePartition(lat, ranks);
  const auto seeds = discSeeds({0.5, 0, 0}, {1, 0, 0}, 0.7, 16);
  std::vector<Polyline> result;
  comm::Runtime rt(ranks);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    // A swirling analytic field exercising all three components.
    auto macro = syntheticField(domain, [](const Vec3d& w) {
      return Vec3d{0.02, 0.004 * std::sin(w.x), 0.004 * std::cos(w.x)};
    });
    GhostedField field(domain, comm, 2);
    field.refresh(macro, comm);
    StreamlineParams params;
    params.maxVertices = 400;
    auto lines = traceStreamlines(comm, field, seeds, params, stats);
    if (comm.rank() == 0) result = std::move(lines);
  });
  return result;
}

TEST(Streamlines, BitwiseRankInvariance) {
  const auto lat = tubeLattice();
  const auto serial = traceOnRanks(lat, 1);
  TraceStats stats;
  const auto parallel = traceOnRanks(lat, 4, &stats);
  EXPECT_GT(stats.migrations, 0u);  // particles really crossed ranks
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(parallel[i].seedId, serial[i].seedId);
    ASSERT_EQ(parallel[i].vertices.size(), serial[i].vertices.size())
        << "seed " << serial[i].seedId;
    for (std::size_t v = 0; v < serial[i].vertices.size(); ++v) {
      EXPECT_EQ(parallel[i].vertices[v].x, serial[i].vertices[v].x);
      EXPECT_EQ(parallel[i].vertices[v].y, serial[i].vertices[v].y);
      EXPECT_EQ(parallel[i].vertices[v].z, serial[i].vertices[v].z);
    }
  }
}

TEST(Streamlines, SeedsOutsideFluidAreDropped) {
  const auto lat = tubeLattice();
  const auto part = makePartition(lat, 2);
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    auto macro = syntheticField(
        domain, [](const Vec3d&) { return Vec3d{0.01, 0, 0}; });
    GhostedField field(domain, comm, 2);
    field.refresh(macro, comm);
    StreamlineParams params;
    const auto lines = traceStreamlines(
        comm, field, {{3.0, 5.0, 5.0}, {3.0, 0.0, 0.0}}, params);
    if (comm.rank() == 0) {
      ASSERT_EQ(lines.size(), 1u);
      EXPECT_EQ(lines[0].seedId, 1u);
    }
  });
}

// --- volume rendering -----------------------------------------------------------

VolumeRenderOptions tubeRenderOptions(int size = 96) {
  VolumeRenderOptions opt;
  opt.camera.position = {3.0, 0.5, 6.0};
  opt.camera.target = {3.0, 0.0, 0.0};
  opt.width = size;
  opt.height = size;
  opt.transfer = TransferFunction::bloodFlow(0.f, 0.02f);
  return opt;
}

Image renderOnRanks(const SparseLattice& lat, int ranks, CompositeMode mode) {
  const auto part = makePartition(lat, ranks);
  Image result;
  comm::Runtime rt(ranks);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    auto macro = syntheticField(domain, [](const Vec3d& w) {
      return Vec3d{0.02 * (1.0 - (w.y * w.y + w.z * w.z)), 0, 0};
    });
    auto img = renderVolume(comm, domain, macro, tubeRenderOptions(), mode);
    if (comm.rank() == 0) result = std::move(img);
  });
  return result;
}

TEST(VolumeRender, SerialImageShowsTheTube) {
  const auto lat = tubeLattice();
  const Image img = renderOnRanks(lat, 1, CompositeMode::kDirectSend);
  int covered = 0;
  for (std::size_t i = 0; i < img.numPixels(); ++i) {
    if (img.pixel(i).a > 0.01f) ++covered;
  }
  // The tube should cover a significant band of the image, not all of it.
  EXPECT_GT(covered, static_cast<int>(img.numPixels()) / 20);
  EXPECT_LT(covered, static_cast<int>(img.numPixels()) * 3 / 4);
}

TEST(VolumeRender, DirectSendMatchesSerial) {
  const auto lat = tubeLattice();
  const Image serial = renderOnRanks(lat, 1, CompositeMode::kDirectSend);
  const Image parallel = renderOnRanks(lat, 4, CompositeMode::kDirectSend);
  double sumDiff = 0.0;
  for (std::size_t i = 0; i < serial.numPixels(); ++i) {
    sumDiff += std::abs(serial.pixel(i).a - parallel.pixel(i).a) +
               std::abs(serial.pixel(i).r - parallel.pixel(i).r);
  }
  EXPECT_LT(sumDiff / static_cast<double>(serial.numPixels()), 0.01);
}

TEST(VolumeRender, BinarySwapMatchesDirectSend) {
  const auto lat = tubeLattice();
  const Image ds = renderOnRanks(lat, 4, CompositeMode::kDirectSend);
  const Image bs = renderOnRanks(lat, 4, CompositeMode::kBinarySwap);
  double maxDiff = 0.0;
  for (std::size_t i = 0; i < ds.numPixels(); ++i) {
    maxDiff = std::max<double>(
        maxDiff, std::abs(ds.pixel(i).a - bs.pixel(i).a));
  }
  EXPECT_LT(maxDiff, 5e-3);
}

TEST(VolumeRender, BinarySwapRejectsNonPowerOfTwo) {
  const auto lat = tubeLattice(0.35);
  comm::Runtime rt(3);
  EXPECT_THROW(
      rt.run([&](comm::Communicator& comm) {
        const auto part = makePartition(lat, 3);
        lb::DomainMap domain(lat, part, comm.rank());
        auto macro = syntheticField(
            domain, [](const Vec3d&) { return Vec3d{0.01, 0, 0}; });
        renderVolume(comm, domain, macro, tubeRenderOptions(32),
                     CompositeMode::kBinarySwap);
      }),
      CheckError);
}

// --- tracers ---------------------------------------------------------------------

TEST(Tracers, UniformFlowAdvectsAndMigrates) {
  const auto lat = tubeLattice();
  const auto part = makePartition(lat, 4);
  comm::Runtime rt(4);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    auto macro = syntheticField(
        domain, [](const Vec3d&) { return Vec3d{0.2, 0, 0}; });
    GhostedField field(domain, comm, 2);
    field.refresh(macro, comm);
    TracerSwarm swarm(field);
    const auto seeds = discSeeds({0.5, 0, 0}, {1, 0, 0}, 0.6, 32);
    swarm.inject(comm, seeds);
    EXPECT_EQ(swarm.globalCount(comm), 32u);
    const double h = lat.voxelSize();
    // 60 steps × 0.2 voxels/step × 0.25 world/voxel = 3 world units —
    // enough to cross several of the 4 parts of a 6-unit tube.
    for (int s = 0; s < 60; ++s) swarm.advect(comm);
    EXPECT_EQ(swarm.globalCount(comm), 32u);
    const auto all = swarm.gather(comm);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 32u);
      for (const auto& t : all) {
        EXPECT_EQ(t.age, 60u);
        EXPECT_NEAR(t.pos.x - 0.5, 60 * 0.2 * h, 1e-6);
      }
    }
    const std::uint64_t migrations =
        comm.allreduceSum(swarm.stats().migrations);
    if (comm.rank() == 0) {
      EXPECT_GT(migrations, 0u);
    }
  });
}

TEST(Tracers, WallImpactKills) {
  const auto lat = tubeLattice();
  const auto part = makePartition(lat, 1);
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, 0);
    // Strong upward flow: tracers crash into the wall.
    auto macro = syntheticField(
        domain, [](const Vec3d&) { return Vec3d{0, 0.3, 0}; });
    GhostedField field(domain, comm, 2);
    field.refresh(macro, comm);
    TracerSwarm swarm(field);
    swarm.inject(comm, discSeeds({3.0, 0, 0}, {1, 0, 0}, 0.5, 16));
    for (int s = 0; s < 60; ++s) swarm.advect(comm);
    EXPECT_EQ(swarm.globalCount(comm), 0u);
    EXPECT_GT(swarm.stats().killedAtWall, 0u);
  });
}

TEST(Tracers, StreaklineInjectionAccumulates) {
  const auto lat = tubeLattice();
  const auto part = makePartition(lat, 2);
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    auto macro = syntheticField(
        domain, [](const Vec3d&) { return Vec3d{0.05, 0, 0}; });
    GhostedField field(domain, comm, 2);
    field.refresh(macro, comm);
    TracerSwarm swarm(field);
    const std::vector<Vec3d> nozzle{{0.5, 0, 0}};
    for (int s = 0; s < 10; ++s) {
      swarm.inject(comm, nozzle);
      swarm.advect(comm);
    }
    EXPECT_EQ(swarm.globalCount(comm), 10u);
    const auto all = swarm.gather(comm);
    if (comm.rank() == 0) {
      // Ages 1..10, each distinct — a streak along the axis.
      std::set<std::uint32_t> ages;
      for (const auto& t : all) ages.insert(t.age);
      EXPECT_EQ(ages.size(), 10u);
    }
  });
}

// --- LIC --------------------------------------------------------------------------

LicResult licOnRanks(const SparseLattice& lat, int ranks) {
  const auto part = makePartition(lat, ranks);
  LicResult result;
  comm::Runtime rt(ranks);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    auto macro = syntheticField(
        domain, [](const Vec3d&) { return Vec3d{0.02, 0, 0}; });
    LicOptions opt;
    opt.axis = 2;
    opt.sliceIndex = lat.dims().z / 2;
    auto lic = computeLicSlice(comm, domain, macro, opt);
    if (comm.rank() == 0) result = std::move(lic);
  });
  return result;
}

TEST(Lic, IntensityOnlyOnFluid) {
  const auto lat = tubeLattice();
  const auto lic = licOnRanks(lat, 1);
  ASSERT_GT(lic.width, 0);
  int fluidPixels = 0;
  for (std::size_t i = 0; i < lic.intensity.size(); ++i) {
    if (lic.fluidMask[i]) {
      ++fluidPixels;
      EXPECT_GE(lic.intensity[i], 0.f);
      EXPECT_LE(lic.intensity[i], 1.f);
    } else {
      EXPECT_EQ(lic.intensity[i], 0.f);
    }
  }
  EXPECT_GT(fluidPixels, 100);
}

TEST(Lic, RankInvariant) {
  const auto lat = tubeLattice();
  const auto serial = licOnRanks(lat, 1);
  const auto parallel = licOnRanks(lat, 4);
  ASSERT_EQ(parallel.intensity.size(), serial.intensity.size());
  for (std::size_t i = 0; i < serial.intensity.size(); ++i) {
    EXPECT_EQ(parallel.intensity[i], serial.intensity[i]) << "pixel " << i;
  }
}

TEST(Lic, SmearsAlongTheFlowDirection) {
  // With uniform +x flow, LIC averages noise along x: variance along rows
  // (x) must be much smaller than along columns (y).
  const auto lat = tubeLattice();
  const auto lic = licOnRanks(lat, 1);
  double varAlong = 0.0, varAcross = 0.0;
  int nAlong = 0, nAcross = 0;
  auto at = [&](int x, int y) {
    return lic.intensity[static_cast<std::size_t>(y) *
                             static_cast<std::size_t>(lic.width) +
                         static_cast<std::size_t>(x)];
  };
  auto isFluid = [&](int x, int y) {
    return lic.fluidMask[static_cast<std::size_t>(y) *
                             static_cast<std::size_t>(lic.width) +
                         static_cast<std::size_t>(x)] != 0;
  };
  for (int y = 1; y + 1 < lic.height; ++y) {
    for (int x = 1; x + 1 < lic.width; ++x) {
      if (!isFluid(x, y)) continue;
      if (isFluid(x + 1, y)) {
        const double d = at(x + 1, y) - at(x, y);
        varAlong += d * d;
        ++nAlong;
      }
      if (isFluid(x, y + 1)) {
        const double d = at(x, y + 1) - at(x, y);
        varAcross += d * d;
        ++nAcross;
      }
    }
  }
  ASSERT_GT(nAlong, 50);
  ASSERT_GT(nAcross, 50);
  EXPECT_LT(varAlong / nAlong, 0.35 * (varAcross / nAcross));
}

// --- line rendering ------------------------------------------------------------------

TEST(LineRender, DrawsVisibleDepthTestedLines) {
  Image img(64, 64);
  Camera cam;
  cam.position = {0, 0, 5};
  cam.target = {0, 0, 0};
  Polyline line;
  line.seedId = 0;
  line.vertices = {{-1.f, 0.f, 0.f}, {1.f, 0.f, 0.f}};
  drawPolylines(img, cam, {line});
  int lit = 0;
  for (std::size_t i = 0; i < img.numPixels(); ++i) {
    if (img.pixel(i).a > 0.f) ++lit;
  }
  EXPECT_GT(lit, 10);
  // A nearer line overwrites; a farther line does not.
  Polyline near = line;
  near.seedId = 1;
  near.vertices = {{-1.f, 0.f, 2.f}, {1.f, 0.f, 2.f}};
  drawPolylines(img, cam, {near});
  Polyline far = line;
  far.seedId = 2;
  far.vertices = {{-1.f, 0.f, -2.f}, {1.f, 0.f, -2.f}};
  const Rgba before = img.at(32, 32);
  drawPolylines(img, cam, {far});
  // Centre pixel keeps the nearer line's colour.
  EXPECT_FLOAT_EQ(img.at(32, 32).r, before.r);
}

TEST(LineRender, SeedColorsCycleDistinctly) {
  EXPECT_NE(seedColor(0).r, seedColor(1).r);
  EXPECT_FLOAT_EQ(seedColor(0).r, seedColor(8).r);
}

}  // namespace
}  // namespace hemo::vis
