// Tests for the thread-rank message-passing runtime: point-to-point
// semantics, every collective against a sequential reference, communicator
// split, traffic accounting, and failure propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "comm/channel.hpp"
#include "comm/runtime.hpp"

namespace hemo::comm {
namespace {

TEST(Runtime, SingleRankRuns) {
  Runtime rt(1);
  int visits = 0;
  rt.run([&](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(Runtime, AllRanksRunWithDistinctIds) {
  const int n = 8;
  std::vector<std::atomic<int>> hits(n);
  Runtime rt(n);
  rt.run([&](Communicator& comm) {
    hits[static_cast<std::size_t>(comm.rank())]++;
    EXPECT_EQ(comm.size(), n);
  });
  for (int i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1);
}

TEST(Runtime, ExceptionPropagatesAndUnblocksPeers) {
  Runtime rt(4);
  EXPECT_THROW(
      rt.run([](Communicator& comm) {
        if (comm.rank() == 2) throw std::runtime_error("rank 2 died");
        // Other ranks block forever on a message that never comes; the
        // abort must wake them.
        if (comm.rank() != 2) {
          EXPECT_THROW(comm.recvBytes(2, 99), AbortError);
          throw std::runtime_error("secondary");
        }
      }),
      std::runtime_error);
}

TEST(PointToPoint, TypedRoundTrip) {
  Runtime::runOnce(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, 1234.5);
      const int back = comm.recv<int>(1, 6);
      EXPECT_EQ(back, 77);
    } else {
      const double v = comm.recv<double>(0, 5);
      EXPECT_EQ(v, 1234.5);
      comm.send(0, 6, 77);
    }
  });
}

TEST(PointToPoint, VectorRoundTripIncludingEmpty) {
  Runtime::runOnce(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<int> v(1000);
      std::iota(v.begin(), v.end(), 0);
      comm.sendVec(1, 1, v);
      comm.sendVec(1, 2, std::vector<int>{});
    } else {
      const auto v = comm.recvVec<int>(0, 1);
      ASSERT_EQ(v.size(), 1000u);
      EXPECT_EQ(v[999], 999);
      EXPECT_TRUE(comm.recvVec<int>(0, 2).empty());
    }
  });
}

TEST(PointToPoint, FifoOrderPerTag) {
  Runtime::runOnce(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 100; ++i) comm.send(1, 3, i);
    } else {
      for (int i = 0; i < 100; ++i) EXPECT_EQ(comm.recv<int>(0, 3), i);
    }
  });
}

TEST(PointToPoint, TagsMatchIndependently) {
  Runtime::runOnce(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 10, 1);
      comm.send(1, 20, 2);
    } else {
      // Receive in reverse tag order: matching must be per-tag, not FIFO
      // across tags.
      EXPECT_EQ(comm.recv<int>(0, 20), 2);
      EXPECT_EQ(comm.recv<int>(0, 10), 1);
    }
  });
}

TEST(PointToPoint, AnySourceReportsSender) {
  Runtime::runOnce(3, [](Communicator& comm) {
    if (comm.rank() != 0) {
      comm.send(0, 7, comm.rank());
    } else {
      std::vector<bool> seen(3, false);
      for (int i = 0; i < 2; ++i) {
        int src = -2;
        const int v = comm.recv<int>(kAnySource, 7, &src);
        EXPECT_EQ(v, src);
        seen[static_cast<std::size_t>(src)] = true;
      }
      EXPECT_TRUE(seen[1]);
      EXPECT_TRUE(seen[2]);
    }
  });
}

TEST(PointToPoint, TryRecvAndProbe) {
  Runtime::runOnce(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> payload;
      EXPECT_FALSE(comm.tryRecvBytes(1, 4, payload));
      comm.barrier();  // rank 1 sends before the barrier
      // After the barrier the message is guaranteed queued.
      EXPECT_TRUE(comm.probe(1, 4));
      ASSERT_TRUE(comm.tryRecvBytes(1, 4, payload));
      EXPECT_EQ(payload.size(), sizeof(int));
    } else {
      comm.send(0, 4, 123);
      comm.barrier();
    }
  });
}

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, BarrierCompletes) {
  Runtime::runOnce(GetParam(), [](Communicator& comm) {
    for (int i = 0; i < 5; ++i) comm.barrier();
  });
}

TEST_P(CollectiveTest, BcastFromEveryRoot) {
  const int n = GetParam();
  Runtime::runOnce(n, [n](Communicator& comm) {
    for (int root = 0; root < n; ++root) {
      int v = (comm.rank() == root) ? 1000 + root : -1;
      comm.bcast(v, root);
      EXPECT_EQ(v, 1000 + root);
      std::vector<double> vec;
      if (comm.rank() == root) vec = {1.5, 2.5, 3.5};
      comm.bcastVec(vec, root);
      ASSERT_EQ(vec.size(), 3u);
      EXPECT_EQ(vec[2], 3.5);
    }
  });
}

TEST_P(CollectiveTest, AllreduceSumMinMax) {
  const int n = GetParam();
  Runtime::runOnce(n, [n](Communicator& comm) {
    const int r = comm.rank();
    EXPECT_EQ(comm.allreduceSum(r + 1), n * (n + 1) / 2);
    EXPECT_EQ(comm.allreduceMax(r), n - 1);
    EXPECT_EQ(comm.allreduceMin(r * 2 + 5), 5);
    EXPECT_DOUBLE_EQ(comm.allreduceSum(0.5), 0.5 * n);
  });
}

TEST_P(CollectiveTest, ReduceVecElementwise) {
  const int n = GetParam();
  Runtime::runOnce(n, [n](Communicator& comm) {
    for (int root = 0; root < n; ++root) {
      std::vector<long> v{static_cast<long>(comm.rank()), 10};
      comm.reduceVec(v, root, [](long a, long b) { return a + b; });
      if (comm.rank() == root) {
        EXPECT_EQ(v[0], 1L * n * (n - 1) / 2);
        EXPECT_EQ(v[1], 10L * n);
      }
    }
  });
}

TEST_P(CollectiveTest, GatherOrdersByRank) {
  const int n = GetParam();
  Runtime::runOnce(n, [n](Communicator& comm) {
    const auto all = comm.gather(comm.rank() * 3, n - 1);
    if (comm.rank() == n - 1) {
      ASSERT_EQ(static_cast<int>(all.size()), n);
      for (int i = 0; i < n; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i * 3);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectiveTest, GatherVecVariableLengths) {
  const int n = GetParam();
  Runtime::runOnce(n, [](Communicator& comm) {
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()), comm.rank());
    const auto all = comm.gatherVec(mine, 0);
    if (comm.rank() == 0) {
      for (int r = 0; r < comm.size(); ++r) {
        const auto& v = all[static_cast<std::size_t>(r)];
        EXPECT_EQ(static_cast<int>(v.size()), r);
        for (int x : v) EXPECT_EQ(x, r);
      }
    }
  });
}

TEST_P(CollectiveTest, AllgatherEveryoneSeesAll) {
  const int n = GetParam();
  Runtime::runOnce(n, [n](Communicator& comm) {
    const auto all = comm.allgather(100 - comm.rank());
    ASSERT_EQ(static_cast<int>(all.size()), n);
    for (int i = 0; i < n; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], 100 - i);
    const auto vecs = comm.allgatherVec(
        std::vector<char>(static_cast<std::size_t>(comm.rank() + 1), 'x'));
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(vecs[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r + 1));
    }
  });
}

TEST_P(CollectiveTest, AlltoallPersonalised) {
  const int n = GetParam();
  Runtime::runOnce(n, [n](Communicator& comm) {
    // Rank r sends {r*100+d} to each destination d.
    std::vector<std::vector<int>> toSend(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      toSend[static_cast<std::size_t>(d)] = {comm.rank() * 100 + d};
    }
    const auto got = comm.alltoallVec(toSend);
    ASSERT_EQ(static_cast<int>(got.size()), n);
    for (int s = 0; s < n; ++s) {
      ASSERT_EQ(got[static_cast<std::size_t>(s)].size(), 1u);
      EXPECT_EQ(got[static_cast<std::size_t>(s)][0], s * 100 + comm.rank());
    }
  });
}

TEST_P(CollectiveTest, ScanSumIsInclusivePrefix) {
  const int n = GetParam();
  Runtime::runOnce(n, [](Communicator& comm) {
    const int r = comm.rank();
    EXPECT_EQ(comm.scanSum(r + 1), (r + 1) * (r + 2) / 2);
  });
}

TEST_P(CollectiveTest, BackToBackCollectivesDontCrossMatch) {
  const int n = GetParam();
  Runtime::runOnce(n, [n](Communicator& comm) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(comm.allreduceSum(1), n);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(Split, ByParityProducesTwoGroups) {
  Runtime::runOnce(6, [](Communicator& comm) {
    auto sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // Collectives work inside the sub-communicator and don't leak across.
    const int sum = sub.allreduceSum(comm.rank());
    if (comm.rank() % 2 == 0) {
      EXPECT_EQ(sum, 0 + 2 + 4);
    } else {
      EXPECT_EQ(sum, 1 + 3 + 5);
    }
  });
}

TEST(Split, KeyReordersRanks) {
  Runtime::runOnce(4, [](Communicator& comm) {
    // Reverse order via descending key.
    auto sub = comm.split(0, -comm.rank());
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(Split, P2pWithinSubCommunicator) {
  Runtime::runOnce(4, [](Communicator& comm) {
    auto sub = comm.split(comm.rank() / 2, comm.rank());
    ASSERT_EQ(sub.size(), 2);
    if (sub.rank() == 0) {
      sub.send(1, 9, comm.rank());
    } else {
      const int peer = sub.recv<int>(0, 9);
      EXPECT_EQ(peer, comm.rank() - 1);
    }
  });
}

TEST(Traffic, CountsBytesAndMessages) {
  Runtime rt(2);
  rt.run([](Communicator& comm) {
    Communicator::TrafficScope scope(comm, Traffic::kHalo);
    if (comm.rank() == 0) {
      std::vector<double> v(100);
      comm.sendVec(1, 1, v);
    } else {
      comm.recvVec<double>(0, 1);
    }
  });
  const auto& c0 = rt.counters(0).of(Traffic::kHalo);
  const auto& c1 = rt.counters(1).of(Traffic::kHalo);
  EXPECT_EQ(c0.messagesSent, 1u);
  EXPECT_EQ(c0.bytesSent, 800u);
  EXPECT_EQ(c1.messagesReceived, 1u);
  EXPECT_EQ(c1.bytesReceived, 800u);
  // Conservation: total sent == total received.
  const auto tot = rt.totalCounters().total();
  EXPECT_EQ(tot.bytesSent, tot.bytesReceived);
  EXPECT_EQ(tot.messagesSent, tot.messagesReceived);
}

TEST(Traffic, CollectiveTrafficIsClassified) {
  Runtime rt(4);
  rt.run([](Communicator& comm) { comm.barrier(); });
  const auto tot = rt.totalCounters();
  EXPECT_GT(tot.of(Traffic::kCollective).messagesSent, 0u);
  EXPECT_EQ(tot.of(Traffic::kHalo).messagesSent, 0u);
}

TEST(Traffic, ScopeRestoresClass) {
  Runtime rt(2);
  rt.run([](Communicator& comm) {
    comm.setTraffic(Traffic::kVis);
    {
      Communicator::TrafficScope scope(comm, Traffic::kIo);
      EXPECT_EQ(comm.traffic(), Traffic::kIo);
    }
    EXPECT_EQ(comm.traffic(), Traffic::kVis);
  });
}

TEST(Traffic, ConservationUnderMixedWorkload) {
  Runtime rt(5);
  rt.run([](Communicator& comm) {
    comm.allreduceSum(1);
    auto sub = comm.split(comm.rank() % 2, 0);
    sub.barrier();
    const auto all = comm.allgather(comm.rank());
    EXPECT_EQ(static_cast<int>(all.size()), comm.size());
  });
  const auto tot = rt.totalCounters().total();
  EXPECT_EQ(tot.bytesSent, tot.bytesReceived);
  EXPECT_EQ(tot.messagesSent, tot.messagesReceived);
}

TEST(Channel, FramedRoundTrip) {
  auto [a, b] = makeChannelPair();
  std::vector<std::byte> frame{std::byte{1}, std::byte{2}, std::byte{3}};
  EXPECT_TRUE(a.send(frame));
  const auto got = b.recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, frame);
  EXPECT_EQ(a.framesSent(), 1u);
  EXPECT_EQ(a.bytesSent(), 3u);
}

TEST(Channel, TryRecvNonBlocking) {
  auto [a, b] = makeChannelPair();
  EXPECT_FALSE(b.tryRecv().has_value());
  a.send({std::byte{9}});
  const auto got = b.tryRecv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 1u);
}

TEST(Channel, CloseDrainsThenEof) {
  auto [a, b] = makeChannelPair();
  a.send({std::byte{1}});
  a.send({std::byte{2}});
  a.close();
  EXPECT_TRUE(b.recv().has_value());
  EXPECT_TRUE(b.recv().has_value());
  EXPECT_FALSE(b.recv().has_value());  // EOF after drain
  EXPECT_FALSE(a.send({std::byte{3}}));
}

TEST(Channel, DuplexIndependence) {
  auto [a, b] = makeChannelPair();
  a.send({std::byte{1}});
  b.send({std::byte{2}});
  EXPECT_EQ((*b.recv())[0], std::byte{1});
  EXPECT_EQ((*a.recv())[0], std::byte{2});
}

TEST(Channel, BoundedCapacityDropsOldest) {
  auto [a, b] = makeChannelPair();
  a.setSendCapacity(2);
  for (std::uint8_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(a.send({std::byte{i}}));
  }
  EXPECT_EQ(a.framesDropped(), 3u);
  EXPECT_EQ(a.framesSent(), 5u);  // pushes counted before eviction
  // Latest-wins: the two newest frames survive, in order.
  EXPECT_EQ((*b.recv())[0], std::byte{3});
  EXPECT_EQ((*b.recv())[0], std::byte{4});
  EXPECT_FALSE(b.tryRecv().has_value());
}

TEST(Channel, UnboundedByDefaultNeverDrops) {
  auto [a, b] = makeChannelPair();
  for (std::uint8_t i = 0; i < 100; ++i) a.send({std::byte{i}});
  EXPECT_EQ(a.framesDropped(), 0u);
  for (std::uint8_t i = 0; i < 100; ++i) {
    EXPECT_EQ((*b.recv())[0], std::byte{i});
  }
}

TEST(Channel, BoundedCapacityKeepsDrainedReaderCurrent) {
  // A reader that keeps up sees every frame; only a stalled reader loses
  // the oldest ones.
  auto [a, b] = makeChannelPair();
  a.setSendCapacity(1);
  for (std::uint8_t i = 0; i < 10; ++i) {
    a.send({std::byte{i}});
    EXPECT_EQ((*b.recv())[0], std::byte{i});
  }
  EXPECT_EQ(a.framesDropped(), 0u);
}

TEST(Channel, CapacityShrinkTrimsBacklogOnNextPush) {
  // Regression: setSendCapacity used to only evict one frame per push, so
  // shrinking the bound under a backlog left the queue oversized for many
  // pushes. The next push must trim the whole excess.
  auto [a, b] = makeChannelPair();
  for (std::uint8_t i = 0; i < 8; ++i) a.send({std::byte{i}});
  EXPECT_EQ(a.sendQueueDepth(), 8u);
  a.setSendCapacity(2);
  EXPECT_EQ(a.sendQueueDepth(), 8u);  // applies on next push, not eagerly
  a.send({std::byte{8}});
  EXPECT_EQ(a.sendQueueDepth(), 2u);
  EXPECT_EQ(a.framesDropped(), 7u);
  EXPECT_EQ((*b.recv())[0], std::byte{7});
  EXPECT_EQ((*b.recv())[0], std::byte{8});
  EXPECT_FALSE(b.tryRecv().has_value());
}

TEST(Channel, CapacityGrowKeepsBacklog) {
  auto [a, b] = makeChannelPair();
  a.setSendCapacity(2);
  a.send({std::byte{0}});
  a.send({std::byte{1}});
  a.setSendCapacity(4);
  a.send({std::byte{2}});
  a.send({std::byte{3}});
  EXPECT_EQ(a.framesDropped(), 0u);
  for (std::uint8_t i = 0; i < 4; ++i) EXPECT_EQ((*b.recv())[0], std::byte{i});
}

TEST(Channel, CreditedSendSpendsBalanceThenRefuses) {
  auto [a, b] = makeChannelPair();
  // Metering off: credited sends refuse, plain sends unaffected.
  EXPECT_FALSE(a.trySendCredited({std::byte{0}}));
  EXPECT_EQ(a.sendCredits(), 0u);
  a.setSendCredits(2);
  EXPECT_TRUE(a.trySendCredited({std::byte{1}}));
  EXPECT_TRUE(a.trySendCredited({std::byte{2}}));
  EXPECT_FALSE(a.trySendCredited({std::byte{3}}));  // balance exhausted
  EXPECT_EQ(a.sendCredits(), 0u);
  a.addSendCredits(1);
  EXPECT_TRUE(a.trySendCredited({std::byte{4}}));
  // The refused frame was never queued; delivered frames are in order.
  EXPECT_EQ((*b.recv())[0], std::byte{1});
  EXPECT_EQ((*b.recv())[0], std::byte{2});
  EXPECT_EQ((*b.recv())[0], std::byte{4});
  EXPECT_FALSE(b.tryRecv().has_value());
  // Control traffic bypasses the meter.
  EXPECT_TRUE(a.send({std::byte{5}}));
  EXPECT_EQ((*b.recv())[0], std::byte{5});
}

TEST(Channel, AddSendCreditsIsNoOpUntilEnabled) {
  auto [a, b] = makeChannelPair();
  a.addSendCredits(10);
  EXPECT_EQ(a.sendCredits(), 0u);
  EXPECT_FALSE(a.trySendCredited({std::byte{0}}));
  (void)b;
}

TEST(Channel, ConcurrentSenderReceiverDrainThenEof) {
  // Close/EOF semantics with a live sender and receiver on separate
  // threads: the receiver must observe every sent frame in order, then a
  // clean EOF — never a premature EOF or a lost frame.
  constexpr int kFrames = 2000;
  auto [a, b] = makeChannelPair();
  std::thread sender([end = std::move(a)]() mutable {
    for (int i = 0; i < kFrames; ++i) {
      std::vector<std::byte> frame(sizeof(int));
      std::memcpy(frame.data(), &i, sizeof(int));
      ASSERT_TRUE(end.send(std::move(frame)));
    }
    end.close();
  });
  int expect = 0;
  while (auto frame = b.recv()) {
    int got;
    ASSERT_EQ(frame->size(), sizeof(int));
    std::memcpy(&got, frame->data(), sizeof(int));
    EXPECT_EQ(got, expect++);
  }
  EXPECT_EQ(expect, kFrames);          // drained everything before EOF
  EXPECT_FALSE(b.recv().has_value());  // EOF is sticky
  sender.join();
}

TEST(Channel, HalfCloseConcurrentPeerKeepsSending) {
  // close() is a half-close: it seals only the closer's outgoing queue.
  // While the peer b closes concurrently, a's sends must keep succeeding
  // (b may still drain them) and a's receive side must observe b's final
  // frame followed by a clean EOF — never a hang or a torn frame.
  auto [a, b] = makeChannelPair();
  std::thread peer([end = std::move(b)]() mutable {
    (void)end.recv();  // wait for a's first frame
    end.send({std::byte{42}});
    end.close();  // seals b->a only
  });
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(a.send({std::byte{1}}));  // a->b stays open throughout
  }
  const auto last = a.recv();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ((*last)[0], std::byte{42});
  EXPECT_FALSE(a.recv().has_value());  // EOF after the drain
  peer.join();
  // Sealing is per-direction even after the peer thread is gone.
  EXPECT_TRUE(a.send({std::byte{2}}));
  a.close();
  EXPECT_FALSE(a.send({std::byte{3}}));
}

TEST(Runtime, ReuseAcrossJobsAccumulatesCounters) {
  Runtime rt(2);
  auto job = [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, 1);
    } else {
      comm.recv<int>(0, 1);
    }
  };
  rt.run(job);
  rt.run(job);
  EXPECT_EQ(rt.totalCounters().total().messagesSent, 2u);
  rt.resetCounters();
  EXPECT_EQ(rt.totalCounters().total().messagesSent, 0u);
}

}  // namespace
}  // namespace hemo::comm
