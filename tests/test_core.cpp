// Core co-design framework tests: pre-processing chain (including the
// vis-aware balance equation), the Fig 3 pipeline, the perf model, and the
// full Fig 2 closed loop with a live steering client.

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "core/perf_model.hpp"
#include "core/preprocess.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "util/stats.hpp"

namespace hemo::core {
namespace {

geometry::SparseLattice aneurysmLattice(double voxel = 0.25) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = voxel;
  return geometry::voxelize(geometry::makeAneurysmVessel(5.0, 1.0, 1.0), opt);
}

// --- preprocess ------------------------------------------------------------------

TEST(Preprocess, AllPartitionerNamesWork) {
  const auto lat = aneurysmLattice(0.3);
  for (const char* name :
       {"block", "sfc", "hilbert", "rcb", "greedy", "kway"}) {
    PreprocessConfig cfg;
    cfg.partitioner = name;
    const auto report = preprocess(lat, 4, cfg);
    EXPECT_EQ(report.partitionerName, name);
    EXPECT_EQ(report.partition.numParts, 4);
    EXPECT_GT(report.metrics.edgeCut, 0u);
    EXPECT_GE(report.seconds, 0.0);
  }
  PreprocessConfig bad;
  bad.partitioner = "magic";
  EXPECT_THROW(preprocess(lat, 4, bad), CheckError);
}

TEST(Preprocess, VisAwareWeightsShiftSites) {
  const auto lat = aneurysmLattice(0.3);
  // Vis work concentrated in the aneurysm half (x > 2.5).
  PreprocessConfig visAware;
  visAware.partitioner = "sfc";
  visAware.visAware = true;
  visAware.visCostFactor = 4.0;
  visAware.visRegion = [](const Vec3d& w) { return w.x > 2.5; };

  PreprocessConfig blind = visAware;
  blind.visAware = false;

  const auto pa = preprocess(lat, 4, visAware);
  const auto pb = preprocess(lat, 4, blind);

  // Under the *true* (vis-inclusive) cost, the vis-aware partition is
  // better balanced than the vis-blind one.
  const auto cost = makeSiteCosts(lat, visAware);
  auto trueImbalance = [&](const partition::Partition& p) {
    std::vector<double> loads(4, 0.0);
    for (std::size_t g = 0; g < cost.size(); ++g) {
      loads[static_cast<std::size_t>(p.partOfSite[g])] += cost[g];
    }
    return imbalanceFactor(loads);
  };
  EXPECT_LT(trueImbalance(pa.partition), 1.1);
  EXPECT_GT(trueImbalance(pb.partition), trueImbalance(pa.partition) + 0.1);
}

// --- perf model ---------------------------------------------------------------------

TEST(PerfModel, MaxRankDominates) {
  std::vector<RankCost> ranks{{1.0, 0, 0}, {2.0, 0, 0}, {0.5, 0, 0}};
  EXPECT_DOUBLE_EQ(modeledParallelSeconds(ranks), 2.0);
}

TEST(PerfModel, CommTermsAdd) {
  CostModel model;
  model.alphaPerMessage = 1e-3;
  model.betaPerByte = 1e-6;
  std::vector<RankCost> ranks{{1.0, 10, 1000}};
  EXPECT_NEAR(modeledParallelSeconds(ranks, model), 1.0 + 0.01 + 0.001,
              1e-12);
}

TEST(PerfModel, SpeedupAgainstSerial) {
  std::vector<RankCost> ranks{{1.0, 0, 0}, {1.0, 0, 0}};
  EXPECT_NEAR(modeledSpeedup(4.0, ranks), 4.0, 1e-12);
}

// --- pipeline --------------------------------------------------------------------------

TEST(Pipeline, StagesRunInOrderWithTimings) {
  const auto lat = aneurysmLattice(0.3);
  PreprocessConfig cfg;
  const auto pre = preprocess(lat, 2, cfg);

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, pre.partition, comm.rank());
    DriverConfig dcfg;
    dcfg.lb.tau = 0.8;
    dcfg.lb.bodyForce = {1e-5, 0, 0};
    dcfg.lb.computeStress = true;
    dcfg.render.width = 48;
    dcfg.render.height = 48;
    dcfg.render.camera.position = {2.5, 0.5, 8.0};
    dcfg.render.camera.target = {2.5, 0.5, 0.0};
    dcfg.streamSeeds = vis::discSeeds({0.4, 0, 0}, {1, 0, 0}, 0.6, 8);
    dcfg.visEvery = 0;     // manual pipeline runs only
    dcfg.statusEvery = 0;
    SimulationDriver driver(domain, comm, dcfg);
    driver.run(30);
    driver.runPipelineNow();

    const auto& out = driver.lastOutputs();
    EXPECT_GT(out.maxSpeed, 0.0);
    EXPECT_GE(out.maxSpeed, out.meanSpeed);
    EXPECT_GT(out.meanWss, 0.0);
    if (comm.rank() == 0) {
      EXPECT_FALSE(out.contextNodes.empty());
      EXPECT_GT(out.volumeImage.numPixels(), 0u);
      EXPECT_FALSE(out.streamlines.empty());
    }
    auto& pipe = driver.pipeline();
    ASSERT_EQ(pipe.numStages(), 4u);
    EXPECT_STREQ(pipe.stageName(0), "extract");
    EXPECT_STREQ(pipe.stageName(3), "render");
    for (std::size_t i = 0; i < pipe.numStages(); ++i) {
      EXPECT_GT(pipe.stageSeconds(i), 0.0) << pipe.stageName(i);
    }
  });
}

TEST(Pipeline, ContextNodesCoverAllSites) {
  const auto lat = aneurysmLattice(0.3);
  PreprocessConfig cfg;
  const auto pre = preprocess(lat, 3, cfg);
  comm::Runtime rt(3);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, pre.partition, comm.rank());
    DriverConfig dcfg;
    dcfg.lb.computeStress = true;
    dcfg.visEvery = 0;
    dcfg.statusEvery = 0;
    dcfg.render.width = 16;
    dcfg.render.height = 16;
    SimulationDriver driver(domain, comm, dcfg);
    driver.run(3);
    driver.runPipelineNow();
    if (comm.rank() == 0) {
      std::uint64_t covered = 0;
      for (const auto& n : driver.lastOutputs().contextNodes) {
        covered += n.count;
      }
      EXPECT_EQ(covered, lat.numFluidSites());
    }
  });
}

// --- closed loop (Fig 2) ------------------------------------------------------------------

TEST(ClosedLoop, SteeringClientDrivesTheSimulation) {
  const auto lat = aneurysmLattice(0.3);
  PreprocessConfig cfg;
  const auto pre = preprocess(lat, 3, cfg);

  auto [clientEnd, serverEnd] = comm::makeChannelPair();

  // The scripted user: asks for status, changes the viewpoint, requests a
  // frame, steers a simulation parameter, pauses/resumes, terminates.
  std::thread user([clientEnd = clientEnd]() mutable {
    steer::SteeringClient client(clientEnd);
    steer::Command c;

    c.type = steer::MsgType::kRequestStatus;
    client.send(c);
    const auto status = client.awaitStatus();
    ASSERT_TRUE(status.has_value());
    EXPECT_GT(status->totalSites, 0u);
    EXPECT_TRUE(status->consistencyOk);

    c = {};
    c.type = steer::MsgType::kSetCamera;
    c.camera.position = {2.5, 0.5, 7.0};
    c.camera.target = {2.5, 0.5, 0.0};
    client.send(c);

    c = {};
    c.type = steer::MsgType::kRequestFrame;
    client.send(c);
    const auto frame = client.awaitImage();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->width, 32);
    EXPECT_EQ(frame->rgb.size(), 32u * 32u * 3u);

    c = {};
    c.type = steer::MsgType::kSetTau;
    c.value = 0.9;
    client.send(c);

    c = {};
    c.type = steer::MsgType::kSetRoi;
    c.roi = {{0, 0, 0}, {64, 64, 64}};
    c.roiLevel = 2;
    client.send(c);
    const auto roi = client.awaitRoi();
    ASSERT_TRUE(roi.has_value());
    EXPECT_FALSE(roi->nodes.empty());

    c = {};
    c.type = steer::MsgType::kTerminate;
    client.send(c);
  });

  comm::Runtime rt(3);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    lb::DomainMap domain(lat, pre.partition, comm.rank());
    DriverConfig dcfg;
    dcfg.lb.tau = 0.8;
    dcfg.lb.bodyForce = {5e-6, 0, 0};
    dcfg.lb.computeStress = true;
    dcfg.render.width = 32;
    dcfg.render.height = 32;
    dcfg.visEvery = 0;
    dcfg.statusEvery = 0;
    dcfg.plannedSteps = 100000;
    SimulationDriver driver(
        domain, comm, dcfg,
        comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    // Plenty of headroom: the terminate command ends the run early.
    const int executed = driver.run(2000000);
    EXPECT_TRUE(driver.terminated());
    EXPECT_LT(executed, 2000000);
    // The steered tau reached every rank.
    EXPECT_DOUBLE_EQ(driver.solver().params().tau, 0.9);
  });
  user.join();
}

TEST(ClosedLoop, PauseFreezesStepsUntilResume) {
  const auto lat = aneurysmLattice(0.35);
  PreprocessConfig cfg;
  const auto pre = preprocess(lat, 2, cfg);
  auto [clientEnd, serverEnd] = comm::makeChannelPair();

  std::thread user([clientEnd = clientEnd]() mutable {
    steer::SteeringClient client(clientEnd);
    steer::Command c;
    c.type = steer::MsgType::kPause;
    client.send(c);
    ASSERT_TRUE(client.awaitAck().has_value());
    // While paused, status must report paused with a frozen step count.
    c = {};
    c.type = steer::MsgType::kRequestStatus;
    client.send(c);
    const auto s1 = client.awaitStatus();
    ASSERT_TRUE(s1.has_value());
    EXPECT_EQ(s1->paused, 1);
    c = {};
    c.type = steer::MsgType::kRequestStatus;
    client.send(c);
    const auto s2 = client.awaitStatus();
    ASSERT_TRUE(s2.has_value());
    EXPECT_EQ(s2->step, s1->step);
    c = {};
    c.type = steer::MsgType::kResume;
    client.send(c);
    c = {};
    c.type = steer::MsgType::kTerminate;
    client.send(c);
  });

  comm::Runtime rt(2);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    lb::DomainMap domain(lat, pre.partition, comm.rank());
    DriverConfig dcfg;
    dcfg.lb.computeStress = true;
    dcfg.render.width = 16;
    dcfg.render.height = 16;
    dcfg.visEvery = 0;
    dcfg.statusEvery = 0;
    SimulationDriver driver(
        domain, comm, dcfg,
        comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    driver.run(1000000);
    EXPECT_TRUE(driver.terminated());
  });
  user.join();
}

TEST(Driver, BatchRunWithoutSteeringWorks) {
  const auto lat = aneurysmLattice(0.35);
  PreprocessConfig cfg;
  const auto pre = preprocess(lat, 2, cfg);
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, pre.partition, comm.rank());
    DriverConfig dcfg;
    dcfg.lb.computeStress = true;
    dcfg.lb.bodyForce = {1e-5, 0, 0};
    dcfg.render.width = 24;
    dcfg.render.height = 24;
    dcfg.visEvery = 5;
    dcfg.statusEvery = 0;
    SimulationDriver driver(domain, comm, dcfg);
    const int executed = driver.run(12);
    EXPECT_EQ(executed, 12);
    EXPECT_FALSE(driver.terminated());
    // visEvery=5 fired at steps 5 and 10.
    EXPECT_EQ(driver.lastOutputs().step, 10u);
  });
}

TEST(Driver, StatusConsistencyChecks) {
  const auto lat = aneurysmLattice(0.35);
  PreprocessConfig cfg;
  const auto pre = preprocess(lat, 2, cfg);
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, pre.partition, comm.rank());
    DriverConfig dcfg;
    dcfg.lb.computeStress = true;
    dcfg.visEvery = 0;
    dcfg.statusEvery = 0;
    dcfg.plannedSteps = 50;
    SimulationDriver driver(domain, comm, dcfg);
    driver.run(10);
    const auto status = driver.computeStatus();
    EXPECT_EQ(status.step, 10u);
    EXPECT_EQ(status.totalSites, lat.numFluidSites());
    EXPECT_TRUE(status.consistencyOk);
    EXPECT_GE(status.loadImbalance, 1.0);
    EXPECT_GT(status.stepsPerSecond, 0.0);
    EXPECT_GT(status.etaSeconds, 0.0);
  });
}

TEST(Driver, RequiresStressForWss) {
  const auto lat = aneurysmLattice(0.35);
  PreprocessConfig cfg;
  const auto pre = preprocess(lat, 1, cfg);
  comm::Runtime rt(1);
  EXPECT_THROW(rt.run([&](comm::Communicator& comm) {
                 lb::DomainMap domain(lat, pre.partition, 0);
                 DriverConfig dcfg;
                 dcfg.computeWss = true;
                 dcfg.lb.computeStress = false;
                 SimulationDriver driver(domain, comm, dcfg);
               }),
               CheckError);
}

}  // namespace
}  // namespace hemo::core
