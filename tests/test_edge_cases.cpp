// Edge-case and error-path tests: malformed files, degenerate geometry,
// empty inputs, wildcard probes, and API misuse that must fail loudly
// rather than corrupt state.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "comm/runtime.hpp"
#include "geometry/sgmy.hpp"
#include "geometry/shapes.hpp"
#include "geometry/sparse_lattice.hpp"
#include "geometry/voxelizer.hpp"
#include "multires/octree.hpp"
#include "partition/partitioners.hpp"
#include "vis/camera.hpp"
#include "vis/lic.hpp"

namespace hemo {
namespace {

TEST(SgmyErrors, MissingFileThrows) {
  EXPECT_THROW(geometry::readSgmyHeader("/tmp/definitely_not_there.sgmy"),
               CheckError);
}

TEST(SgmyErrors, BadMagicThrows) {
  const std::string path = "/tmp/hemo_test_badmagic.sgmy";
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOPEnonsense_bytes_here_that_are_long_enough_to_parse";
  }
  EXPECT_THROW(geometry::readSgmyHeader(path), CheckError);
  std::remove(path.c_str());
}

TEST(SgmyErrors, TruncatedHeaderThrows) {
  const std::string path = "/tmp/hemo_test_trunc.sgmy";
  {
    std::ofstream f(path, std::ios::binary);
    f << "SGMY";  // magic only, nothing else
    f.put(2);
  }
  EXPECT_THROW(geometry::readSgmyHeader(path), CheckError);
  std::remove(path.c_str());
}

TEST(LatticeErrors, DuplicateSiteRejected) {
  geometry::SparseLattice lat({8, 8, 8}, 1.0, {0, 0, 0});
  geometry::SiteRecord rec;
  lat.addFluidSite({1, 1, 1}, rec);
  lat.addFluidSite({1, 1, 1}, rec);
  EXPECT_THROW(lat.finalize(), CheckError);
}

TEST(LatticeErrors, OutOfBoundsSiteRejected) {
  geometry::SparseLattice lat({8, 8, 8}, 1.0, {0, 0, 0});
  geometry::SiteRecord rec;
  EXPECT_THROW(lat.addFluidSite({8, 0, 0}, rec), CheckError);
  EXPECT_THROW(lat.addFluidSite({0, -1, 0}, rec), CheckError);
}

TEST(LatticeErrors, QueriesBeforeFinalizeRejected) {
  geometry::SparseLattice lat({8, 8, 8}, 1.0, {0, 0, 0});
  EXPECT_THROW(lat.siteId({0, 0, 0}), CheckError);
}

TEST(VoxelizerErrors, EmptySceneRejected) {
  geometry::Scene empty;
  geometry::VoxelizeOptions opt;
  EXPECT_THROW(geometry::voxelize(empty, opt), CheckError);
}

TEST(PartitionErrors, MorePartsThanSitesRejected) {
  geometry::Scene scene;
  scene.addShape(
      std::make_unique<geometry::SphereShape>(Vec3d{0, 0, 0}, 0.6));
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.5;
  const auto lat = geometry::voxelize(scene, opt);
  const auto graph = partition::buildSiteGraph(lat);
  partition::RcbPartitioner rcb;
  EXPECT_THROW(rcb.partition(graph, static_cast<int>(lat.numFluidSites()) + 5),
               CheckError);
}

TEST(CommEdge, ProbeAnySource) {
  comm::Runtime::runOnce(3, [](comm::Communicator& comm) {
    if (comm.rank() != 0) {
      comm.send(0, 11, comm.rank());
      comm.barrier();
    } else {
      comm.barrier();  // both messages queued once the barrier passes
      EXPECT_TRUE(comm.probe(comm::kAnySource, 11));
      EXPECT_FALSE(comm.probe(comm::kAnySource, 12));
      comm.recv<int>(comm::kAnySource, 11);
      comm.recv<int>(comm::kAnySource, 11);
      EXPECT_FALSE(comm.probe(comm::kAnySource, 11));
    }
  });
}

TEST(CommEdge, ZeroByteMessages) {
  comm::Runtime::runOnce(2, [](comm::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.sendBytes(1, 3, nullptr, 0);
    } else {
      EXPECT_TRUE(comm.recvBytes(0, 3).empty());
    }
  });
}

TEST(CommEdge, SendToInvalidRankThrows) {
  comm::Runtime rt(2);
  EXPECT_THROW(rt.run([](comm::Communicator& comm) {
                 if (comm.rank() == 0) comm.send(5, 1, 42);
                 comm.barrier();
               }),
               CheckError);
}

TEST(CameraEdge, NonSquareAspectPreserved) {
  vis::Camera cam;
  cam.position = {0, 0, 5};
  cam.target = {0, 0, 0};
  // In a 2:1 image, the horizontal half-angle doubles the vertical one:
  // the rightmost ray leans further in x than the topmost leans in y.
  const auto right = cam.rayThrough(255, 64, 256, 128);
  const auto top = cam.rayThrough(127, 0, 256, 128);
  EXPECT_GT(right.direction.x, top.direction.y);
}

TEST(OctreeEdge, FindAbsentKeyReturnsNull) {
  geometry::Scene scene;
  scene.addShape(
      std::make_unique<geometry::SphereShape>(Vec3d{0, 0, 0}, 0.8));
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  const auto lat = geometry::voxelize(scene, opt);
  partition::Partition part;
  part.numParts = 1;
  part.partOfSite.assign(lat.numFluidSites(), 0);
  lb::DomainMap domain(lat, part, 0);
  multires::FieldOctree tree(domain, 0);
  // A key far outside the fluid.
  EXPECT_EQ(tree.find(tree.leafLevel(), morton3(Vec3i{0, 0, 0})), nullptr);
  // Query with an empty ROI returns nothing.
  EXPECT_TRUE(tree.query(2, BoxI{{5, 5, 5}, {5, 5, 5}}).empty());
}

TEST(LicEdge, SliceOutsideFluidIsEmptyButValid) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  const auto lat =
      geometry::voxelize(geometry::makeStraightTube(4.0, 1.0), opt);
  partition::Partition part;
  part.numParts = 1;
  part.partOfSite.assign(lat.numFluidSites(), 0);
  comm::Runtime::runOnce(1, [&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, 0);
    lb::MacroFields macro;
    macro.rho.assign(domain.numOwned(), 1.0);
    macro.u.assign(domain.numOwned(), Vec3d{0.01, 0, 0});
    vis::LicOptions licOpt;
    licOpt.axis = 2;
    licOpt.sliceIndex = 0;  // the padding layer: no fluid here
    const auto lic = vis::computeLicSlice(comm, domain, macro, licOpt);
    ASSERT_GT(lic.width, 0);
    for (const auto m : lic.fluidMask) EXPECT_EQ(m, 0);
    const auto gray = lic.toGray8();
    for (const auto g : gray) EXPECT_EQ(g, 0);
  });
}

TEST(RuntimeEdge, ZeroRanksRejected) {
  EXPECT_THROW(comm::Runtime rt(0), CheckError);
}

}  // namespace
}  // namespace hemo

// --- wire-protocol robustness ------------------------------------------------------

#include "steer/protocol.hpp"
#include "util/rng.hpp"

namespace hemo {
namespace {

TEST(ProtocolRobustness, TruncatedFramesThrowNotCrash) {
  steer::Command cmd;
  cmd.type = steer::MsgType::kSetCamera;
  const auto full = steer::encodeCommand(cmd);
  for (std::size_t cut : {std::size_t{1}, full.size() / 2, full.size() - 1}) {
    const std::vector<std::byte> truncated(full.begin(),
                                           full.begin() +
                                               static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(steer::decodeCommand(truncated), CheckError) << cut;
  }
  steer::StatusReport status;
  const auto sf = steer::encodeStatus(status);
  EXPECT_THROW(steer::decodeStatus(std::vector<std::byte>(
                   sf.begin(), sf.begin() + 3)),
               CheckError);
}

TEST(ProtocolRobustness, OversizedFramesRejected) {
  // Trailing garbage after a valid body must be detected (atEnd check).
  steer::Command cmd;
  auto frame = steer::encodeCommand(cmd);
  frame.push_back(std::byte{0});
  EXPECT_THROW(steer::decodeCommand(frame), CheckError);
}

TEST(ProtocolRobustness, RandomBytesNeverCorruptState) {
  // Decoding arbitrary garbage may throw (almost always) but must never
  // crash or read out of bounds; 200 random frames of random lengths.
  Rng rng(123);
  int threw = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::byte> junk(rng.uniformInt(120) + 1);
    for (auto& b : junk) {
      b = static_cast<std::byte>(rng.uniformInt(256));
    }
    try {
      steer::decodeCommand(junk);
    } catch (const CheckError&) {
      ++threw;
    }
    try {
      steer::decodeImage(junk);
    } catch (const CheckError&) {
      ++threw;
    }
    try {
      steer::decodeRoi(junk);
    } catch (const CheckError&) {
      ++threw;
    }
  }
  EXPECT_GT(threw, 500);  // nearly every garbage frame rejected
}

TEST(ProtocolRobustness, TruncatedBlockPayloadThrows) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  const auto lat =
      geometry::voxelize(geometry::makeStraightTube(3.0, 1.0), opt);
  const std::string path = "/tmp/hemo_test_truncpayload.sgmy";
  ASSERT_TRUE(geometry::writeSgmy(path, lat));
  const auto header = geometry::readSgmyHeader(path);
  auto payloads = geometry::readSgmyBlockPayloads(path, header, 0, 1);
  ASSERT_FALSE(payloads.empty());
  auto& payload = payloads[0];
  ASSERT_GT(payload.size(), 4u);
  payload.resize(payload.size() / 2 + 1);
  EXPECT_THROW(geometry::decodeBlockPayload(
                   header, header.blockTable[0].blockLinear, payload),
               CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hemo
