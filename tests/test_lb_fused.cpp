// Fused-kernel tests: the fused collide-stream path must reproduce the
// reference three-phase path to round-off on every distribution value, the
// internal frontier/bulk reordering must stay invisible outside the solver,
// and conservation laws must hold on the fused path.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "comm/runtime.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "lb/solver.hpp"
#include "partition/partitioners.hpp"
#include "util/morton.hpp"

namespace hemo::lb {
namespace {

using geometry::SparseLattice;

SparseLattice tube(double voxel = 0.15) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = voxel;
  return geometry::voxelize(geometry::makeStraightTube(4.0, 1.0), opt);
}

SparseLattice closedCavity() {
  geometry::Scene scene;
  scene.addShape(std::make_unique<geometry::SphereShape>(Vec3d{0, 0, 0}, 1.2));
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.15;
  return geometry::voxelize(scene, opt);
}

/// Full solver state in global site order: every distribution plus the
/// cached macroscopic moments.
struct GlobalState {
  std::vector<std::vector<double>> f;  ///< kQ vectors of numFluidSites
  std::vector<double> rho;
  std::vector<Vec3d> u;
};

template <typename Lattice = D3Q19>
GlobalState runGatheredState(
    const SparseLattice& lattice, int ranks, const LbParams& params,
    int steps,
    const std::type_identity_t<std::function<void(Solver<Lattice>&)>>& setup =
        nullptr) {
  const auto graph = partition::buildSiteGraph(lattice);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, ranks);

  GlobalState state;
  state.f.assign(static_cast<std::size_t>(Lattice::kQ),
                 std::vector<double>(lattice.numFluidSites(), 0.0));
  state.rho.assign(lattice.numFluidSites(), 0.0);
  state.u.assign(lattice.numFluidSites(), Vec3d{});

  comm::Runtime rt(ranks);
  rt.run([&](comm::Communicator& comm) {
    DomainMap domain(lattice, part, comm.rank());
    Solver<Lattice> solver(domain, comm, params);
    if (setup) setup(solver);
    solver.run(steps);
    std::vector<double> fi;
    for (int i = 0; i < Lattice::kQ; ++i) {
      solver.gatherDistribution(i, fi);
      for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
        state.f[static_cast<std::size_t>(i)]
               [static_cast<std::size_t>(domain.globalOf(l))] = fi[l];
      }
    }
    for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
      const auto g = static_cast<std::size_t>(domain.globalOf(l));
      state.rho[g] = solver.macro().rho[static_cast<std::size_t>(l)];
      state.u[g] = solver.macro().u[static_cast<std::size_t>(l)];
    }
  });
  return state;
}

template <typename Lattice = D3Q19>
void expectStatesMatch(const GlobalState& a, const GlobalState& b,
                       double tol) {
  ASSERT_EQ(a.rho.size(), b.rho.size());
  double maxDf = 0.0;
  for (int i = 0; i < Lattice::kQ; ++i) {
    const auto& fa = a.f[static_cast<std::size_t>(i)];
    const auto& fb = b.f[static_cast<std::size_t>(i)];
    for (std::size_t g = 0; g < fa.size(); ++g) {
      maxDf = std::max(maxDf, std::abs(fa[g] - fb[g]));
    }
  }
  EXPECT_LE(maxDf, tol) << "max distribution mismatch";
  double maxDrho = 0.0, maxDu = 0.0;
  for (std::size_t g = 0; g < a.rho.size(); ++g) {
    maxDrho = std::max(maxDrho, std::abs(a.rho[g] - b.rho[g]));
    maxDu = std::max(maxDu, (a.u[g] - b.u[g]).norm());
  }
  EXPECT_LE(maxDrho, tol) << "max density mismatch";
  EXPECT_LE(maxDu, tol) << "max velocity mismatch";
}

// --- fused vs reference equivalence -----------------------------------------

TEST(FusedVsReference, BgkBodyForceMatches) {
  const auto lattice = tube();
  LbParams params;
  params.tau = 0.8;
  params.collision = LbParams::Collision::kBgk;
  params.bodyForce = Vec3d{1e-5, 0, 0};

  params.kernel = LbParams::Kernel::kFused;
  const auto fused = runGatheredState(lattice, 3, params, 100);
  params.kernel = LbParams::Kernel::kReference;
  const auto ref = runGatheredState(lattice, 3, params, 100);
  expectStatesMatch(fused, ref, 1e-12);
}

TEST(FusedVsReference, TrtBothIoletKindsMatch) {
  const auto lattice = tube();
  ASSERT_GE(lattice.iolets().size(), 2u);
  LbParams params;
  params.tau = 0.9;
  params.collision = LbParams::Collision::kTrt;
  // Velocity BC on the inlet, pressure BC on the outlet: exercises both
  // iolet rules of the fused frontier pass.
  const auto setup = [](SolverD3Q19& solver) {
    solver.setIoletVelocity(0, Vec3d{0.0, 0.0, 0.005});
    solver.setIoletDensity(1, 0.995);
  };

  params.kernel = LbParams::Kernel::kFused;
  const auto fused = runGatheredState(lattice, 2, params, 100, setup);
  params.kernel = LbParams::Kernel::kReference;
  const auto ref = runGatheredState(lattice, 2, params, 100, setup);
  expectStatesMatch(fused, ref, 1e-12);
}

TEST(FusedVsReference, StressFieldMatches) {
  const auto lattice = tube();
  LbParams params;
  params.tau = 0.8;
  params.bodyForce = Vec3d{1e-5, 0, 0};
  params.computeStress = true;

  const auto graph = partition::buildSiteGraph(lattice);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);
  std::vector<double> stressNorm[2];
  for (const auto kernel :
       {LbParams::Kernel::kFused, LbParams::Kernel::kReference}) {
    params.kernel = kernel;
    auto& out = stressNorm[kernel == LbParams::Kernel::kFused ? 0 : 1];
    out.assign(lattice.numFluidSites(), 0.0);
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      DomainMap domain(lattice, part, comm.rank());
      SolverD3Q19 solver(domain, comm, params);
      solver.run(50);
      for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
        out[static_cast<std::size_t>(domain.globalOf(l))] =
            solver.macro().stress[static_cast<std::size_t>(l)].frobenius();
      }
    });
  }
  double maxD = 0.0;
  for (std::size_t g = 0; g < stressNorm[0].size(); ++g) {
    maxD = std::max(maxD, std::abs(stressNorm[0][g] - stressNorm[1][g]));
  }
  EXPECT_LE(maxD, 1e-12);
}

// --- simd vs fused equivalence ------------------------------------------------

// The vectorised kernel replicates the scalar per-site operation order, so
// its trajectory must track the fused kernel to round-off (FMA contraction
// is the only permitted difference).

TEST(SimdVsFused, BgkBodyForceMatches) {
  const auto lattice = tube();
  LbParams params;
  params.tau = 0.8;
  params.collision = LbParams::Collision::kBgk;
  params.bodyForce = Vec3d{1e-5, 0, 0};

  params.kernel = LbParams::Kernel::kSimd;
  const auto simd = runGatheredState(lattice, 3, params, 100);
  params.kernel = LbParams::Kernel::kFused;
  const auto fused = runGatheredState(lattice, 3, params, 100);
  expectStatesMatch(simd, fused, 1e-12);
}

TEST(SimdVsFused, TrtBothIoletKindsMatch) {
  const auto lattice = tube();
  ASSERT_GE(lattice.iolets().size(), 2u);
  LbParams params;
  params.tau = 0.9;
  params.collision = LbParams::Collision::kTrt;
  const auto setup = [](SolverD3Q19& solver) {
    solver.setIoletVelocity(0, Vec3d{0.0, 0.0, 0.005});
    solver.setIoletDensity(1, 0.995);
  };

  params.kernel = LbParams::Kernel::kSimd;
  const auto simd = runGatheredState(lattice, 2, params, 100, setup);
  params.kernel = LbParams::Kernel::kFused;
  const auto fused = runGatheredState(lattice, 2, params, 100, setup);
  expectStatesMatch(simd, fused, 1e-12);
}

TEST(SimdVsFused, SingleRankMatches) {
  // One rank maximises the bulk segment, so the SIMD strips (not the
  // scalar tail) carry nearly all sites.
  const auto lattice = tube();
  LbParams params;
  params.tau = 0.8;
  params.bodyForce = Vec3d{1e-5, 0, 0};

  params.kernel = LbParams::Kernel::kSimd;
  const auto simd = runGatheredState(lattice, 1, params, 100);
  params.kernel = LbParams::Kernel::kFused;
  const auto fused = runGatheredState(lattice, 1, params, 100);
  expectStatesMatch(simd, fused, 1e-12);
}

TEST(SimdVsFused, StressFieldMatches) {
  const auto lattice = tube();
  LbParams params;
  params.tau = 0.8;
  params.bodyForce = Vec3d{1e-5, 0, 0};
  params.computeStress = true;

  const auto graph = partition::buildSiteGraph(lattice);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);
  std::vector<double> stressNorm[2];
  for (const auto kernel :
       {LbParams::Kernel::kSimd, LbParams::Kernel::kFused}) {
    params.kernel = kernel;
    auto& out = stressNorm[kernel == LbParams::Kernel::kSimd ? 0 : 1];
    out.assign(lattice.numFluidSites(), 0.0);
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      DomainMap domain(lattice, part, comm.rank());
      SolverD3Q19 solver(domain, comm, params);
      solver.run(50);
      for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
        out[static_cast<std::size_t>(domain.globalOf(l))] =
            solver.macro().stress[static_cast<std::size_t>(l)].frobenius();
      }
    });
  }
  double maxD = 0.0;
  for (std::size_t g = 0; g < stressNorm[0].size(); ++g) {
    maxD = std::max(maxD, std::abs(stressNorm[0][g] - stressNorm[1][g]));
  }
  EXPECT_LE(maxD, 1e-12);
}

// --- layout equivalence -------------------------------------------------------

// The AoS record layout must produce the same trajectory as the SoA planes
// through both scalar kernels: the layout only changes where values live,
// never what arithmetic runs.

TEST(LayoutEquivalence, FusedAosMatchesSoa) {
  const auto lattice = tube();
  LbParams params;
  params.tau = 0.8;
  params.bodyForce = Vec3d{1e-5, 0, 0};
  params.kernel = LbParams::Kernel::kFused;

  params.layout = Layout::kAoS;
  const auto aos = runGatheredState(lattice, 2, params, 100);
  params.layout = Layout::kSoA;
  const auto soa = runGatheredState(lattice, 2, params, 100);
  expectStatesMatch(aos, soa, 0.0);  // identical arithmetic → bit-exact
}

TEST(LayoutEquivalence, ReferenceAosMatchesSoa) {
  const auto lattice = tube();
  LbParams params;
  params.tau = 0.9;
  params.collision = LbParams::Collision::kTrt;
  params.kernel = LbParams::Kernel::kReference;

  params.layout = Layout::kAoS;
  const auto aos = runGatheredState(lattice, 2, params, 50);
  params.layout = Layout::kSoA;
  const auto soa = runGatheredState(lattice, 2, params, 50);
  expectStatesMatch(aos, soa, 0.0);
}

// --- conservation on the fused path ------------------------------------------

TEST(FusedConservation, ClosedCavityMassExact) {
  const auto lattice = closedCavity();
  LbParams params;
  params.tau = 0.7;
  params.kernel = LbParams::Kernel::kFused;

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    const auto graph = partition::buildSiteGraph(lattice);
    partition::SfcPartitioner sfc;
    const auto part = sfc.partition(graph, comm.size());
    DomainMap domain(lattice, part, comm.rank());
    SolverD3Q19 solver(domain, comm, params);
    solver.initWith([](const Vec3d& w) {
      return std::pair{1.0, Vec3d{0.01 * w.y, -0.01 * w.x, 0.0}};
    });
    solver.step();
    const double m0 = comm.allreduceSum(solver.localMass());
    solver.run(100);
    const double m1 = comm.allreduceSum(solver.localMass());
    EXPECT_NEAR(m1 / m0, 1.0, 1e-12);
  });
}

TEST(FusedConservation, AtRestCavityStaysAtRest) {
  const auto lattice = closedCavity();
  LbParams params;
  params.tau = 0.7;
  params.kernel = LbParams::Kernel::kFused;

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    const auto graph = partition::buildSiteGraph(lattice);
    partition::SfcPartitioner sfc;
    const auto part = sfc.partition(graph, comm.size());
    DomainMap domain(lattice, part, comm.rank());
    SolverD3Q19 solver(domain, comm, params);  // equilibrium at rest
    solver.run(100);
    const Vec3d p = comm.allreduceSum(solver.localMomentum());
    EXPECT_LE(p.norm(), 1e-13);  // round-off only, summed over all sites
    const double mass = comm.allreduceSum(solver.localMass());
    EXPECT_NEAR(mass, static_cast<double>(lattice.numFluidSites()), 1e-10);
  });
}

class ConservationEveryKernel
    : public ::testing::TestWithParam<std::pair<LbParams::Kernel, Layout>> {};

TEST_P(ConservationEveryKernel, ClosedCavityMassExact) {
  const auto [kernel, layout] = GetParam();
  const auto lattice = closedCavity();
  LbParams params;
  params.tau = 0.7;
  params.kernel = kernel;
  params.layout = layout;

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    const auto graph = partition::buildSiteGraph(lattice);
    partition::SfcPartitioner sfc;
    const auto part = sfc.partition(graph, comm.size());
    DomainMap domain(lattice, part, comm.rank());
    SolverD3Q19 solver(domain, comm, params);
    solver.initWith([](const Vec3d& w) {
      return std::pair{1.0, Vec3d{0.01 * w.y, -0.01 * w.x, 0.0}};
    });
    solver.step();
    const double m0 = comm.allreduceSum(solver.localMass());
    solver.run(100);
    const double m1 = comm.allreduceSum(solver.localMass());
    EXPECT_NEAR(m1 / m0, 1.0, 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ConservationEveryKernel,
    ::testing::Values(
        std::pair{LbParams::Kernel::kFused, Layout::kSoA},
        std::pair{LbParams::Kernel::kFused, Layout::kAoS},
        std::pair{LbParams::Kernel::kReference, Layout::kAoS},
        std::pair{LbParams::Kernel::kSimd, Layout::kSoA}),
    [](const auto& info) {
      const std::string name =
          info.param.first == LbParams::Kernel::kFused  ? "Fused"
          : info.param.first == LbParams::Kernel::kSimd ? "Simd"
                                                        : "Reference";
      return name + (info.param.second == Layout::kSoA ? "Soa" : "Aos");
    });

// --- reordering contract ------------------------------------------------------

TEST(Reordering, MapsAreInversePermutations) {
  const auto lattice = tube();
  LbParams params;
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    const auto graph = partition::buildSiteGraph(lattice);
    partition::SfcPartitioner sfc;
    const auto part = sfc.partition(graph, 1);
    DomainMap domain(lattice, part, 0);
    SolverD3Q19 solver(domain, comm, params);
    const auto& ro = solver.reordering();
    ASSERT_EQ(ro.numSites(), domain.numOwned());
    EXPECT_GT(ro.numFrontier, 0u);  // the tube has walls and iolets
    EXPECT_GT(ro.numBulk(), 0u);
    for (std::uint32_t e = 0; e < ro.numSites(); ++e) {
      EXPECT_EQ(ro.externalOf[ro.internalOf[e]], e);
    }

    // On one rank a site is frontier exactly when some streaming pull
    // crosses a wall or iolet (no remote neighbours exist).
    const auto& set = D3Q19::kSet;
    for (std::uint32_t e = 0; e < ro.numSites(); ++e) {
      bool boundary = false;
      const std::uint64_t g = domain.globalOf(e);
      for (int i = 1; i < D3Q19::kQ; ++i) {
        if (lattice.neighborId(
                g, set.geoDir[static_cast<std::size_t>(i)]) < 0) {
          boundary = true;
          break;
        }
      }
      EXPECT_EQ(ro.internalOf[e] < ro.numFrontier, boundary)
          << "site " << g;
    }

    // Bulk segment is Morton-sorted for locality.
    std::uint64_t prev = 0;
    for (std::uint32_t l = ro.numFrontier; l < ro.numSites(); ++l) {
      const std::uint64_t key =
          morton3(lattice.sitePosition(domain.globalOf(ro.externalOf[l])));
      EXPECT_GE(key, prev);
      prev = key;
    }
  });
}

TEST(Reordering, ExternalIndexingUnchanged) {
  const auto lattice = tube();
  LbParams params;
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    const auto graph = partition::buildSiteGraph(lattice);
    partition::MultilevelKWayPartitioner kway;
    const auto part = kway.partition(graph, comm.size());
    DomainMap domain(lattice, part, comm.rank());
    SolverD3Q19 solver(domain, comm, params);
    // Seed a site-identifying density; macro() and distribution() must
    // report it back in DomainMap (external) order.
    solver.initWith([](const Vec3d& w) {
      return std::pair{1.0 + 0.001 * w.x, Vec3d{}};
    });
    for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
      const Vec3d w = lattice.siteWorld(domain.globalOf(l));
      EXPECT_NEAR(solver.macro().rho[static_cast<std::size_t>(l)],
                  1.0 + 0.001 * w.x, 1e-14);
    }
    // distribution()/setDistribution() round-trip in external order.
    const auto f5 = solver.distribution(5);
    solver.setDistribution(5, f5);
    EXPECT_EQ(solver.distribution(5), f5);
  });
}

}  // namespace
}  // namespace hemo::lb
