// Tests for the decomposition substrate: graph construction, all five
// partitioners (validity + balance + edge-cut sanity), metrics and the
// diffusive repartitioner.

#include <gtest/gtest.h>

#include <memory>

#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "partition/graph.hpp"
#include "partition/metrics.hpp"
#include "partition/partitioners.hpp"
#include "partition/repartition.hpp"
#include "util/stats.hpp"

namespace hemo::partition {
namespace {

geometry::SparseLattice makeTestLattice() {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  return geometry::voxelize(geometry::makeAneurysmVessel(6.0, 1.0, 1.0), opt);
}

class PartitionFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lattice_ = new geometry::SparseLattice(makeTestLattice());
    graph_ = new SiteGraph(buildSiteGraph(*lattice_));
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete lattice_;
    graph_ = nullptr;
    lattice_ = nullptr;
  }
  static geometry::SparseLattice* lattice_;
  static SiteGraph* graph_;
};

geometry::SparseLattice* PartitionFixture::lattice_ = nullptr;
SiteGraph* PartitionFixture::graph_ = nullptr;

TEST_F(PartitionFixture, GraphIsSymmetricAndLoopFree) {
  const auto& g = *graph_;
  ASSERT_EQ(g.xadj.size(), g.numVertices + 1);
  for (std::uint64_t v = 0; v < g.numVertices; ++v) {
    for (std::uint64_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const auto u = g.adjncy[e];
      EXPECT_NE(u, v);  // no self loops
      // Symmetric: u lists v.
      bool found = false;
      for (std::uint64_t e2 = g.xadj[u]; e2 < g.xadj[u + 1]; ++e2) {
        if (g.adjncy[e2] == v) {
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << "edge " << v << "->" << u << " not symmetric";
      if (v > 100) break;  // full check on a prefix keeps the test fast
    }
    if (v > 100) break;
  }
}

TEST_F(PartitionFixture, GraphDegreesAreLatticeLike) {
  const auto& g = *graph_;
  for (std::uint64_t v = 0; v < g.numVertices; ++v) {
    EXPECT_LE(g.degree(v), 26u);
    EXPECT_GE(g.degree(v), 1u);
  }
  EXPECT_DOUBLE_EQ(g.totalWeight(), static_cast<double>(g.numVertices));
}

struct PartitionerCase {
  const char* name;
  int parts;
};

class AllPartitionersTest
    : public PartitionFixture,
      public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(AllPartitionersTest, ValidBalancedCover) {
  const auto [which, parts] = GetParam();
  const auto all = makeAllPartitioners(*lattice_);
  const auto& partitioner = *all[static_cast<std::size_t>(which)];
  const auto p = partitioner.partition(*graph_, parts);

  ASSERT_EQ(p.numParts, parts);
  ASSERT_EQ(p.partOfSite.size(), graph_->numVertices);
  // Every site assigned exactly one valid part; every part non-empty.
  std::vector<std::uint64_t> count(static_cast<std::size_t>(parts), 0);
  for (const int q : p.partOfSite) {
    ASSERT_GE(q, 0);
    ASSERT_LT(q, parts);
    ++count[static_cast<std::size_t>(q)];
  }
  for (int q = 0; q < parts; ++q) {
    EXPECT_GT(count[static_cast<std::size_t>(q)], 0u)
        << partitioner.name() << " left part " << q << " empty";
  }
  const auto m = evaluatePartition(*graph_, p);
  // Block granularity is the loosest (a single 8³ block can exceed the
  // ideal share at high part counts on this small lattice); everything
  // else should be tight.
  const double bound = (which == 0) ? 3.2 : 1.35;
  EXPECT_LT(m.imbalance, bound) << partitioner.name();
  EXPECT_GT(m.edgeCut, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllPartitionersTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(2, 3, 4, 8, 16)));

TEST_F(PartitionFixture, SinglePartIsTrivial) {
  for (const auto& partitioner : makeAllPartitioners(*lattice_)) {
    const auto p = partitioner->partition(*graph_, 1);
    const auto m = evaluatePartition(*graph_, p);
    EXPECT_EQ(m.edgeCut, 0u) << partitioner->name();
    EXPECT_EQ(m.boundaryVertices, 0u);
    EXPECT_DOUBLE_EQ(m.imbalance, 1.0);
  }
}

TEST_F(PartitionFixture, KWayBeatsNaiveSplitOnEdgeCut) {
  // The multilevel partitioner should cut fewer edges than the coarse
  // block scan — that is why HemeLB calls ParMETIS at all.
  MultilevelKWayPartitioner kway;
  BlockPartitioner block(*lattice_);
  const auto mk = evaluatePartition(*graph_, kway.partition(*graph_, 8));
  const auto mb = evaluatePartition(*graph_, block.partition(*graph_, 8));
  EXPECT_LT(mk.edgeCut, mb.edgeCut);
}

TEST_F(PartitionFixture, KWayIsDeterministic) {
  MultilevelKWayPartitioner a, b;
  const auto pa = a.partition(*graph_, 4);
  const auto pb = b.partition(*graph_, 4);
  EXPECT_EQ(pa.partOfSite, pb.partOfSite);
}

TEST_F(PartitionFixture, RcbRespectsGeometry) {
  RcbPartitioner rcb;
  const auto p = rcb.partition(*graph_, 2);
  // With 2 parts, RCB must split along the longest axis (x for the tube):
  // part of a site is monotone in x except at the single cut plane.
  int crossings = 0;
  for (std::uint64_t v = 0; v < graph_->numVertices; ++v) {
    for (std::uint64_t e = graph_->xadj[v]; e < graph_->xadj[v + 1]; ++e) {
      const auto u = graph_->adjncy[e];
      if (u > v && p.partOfSite[v] != p.partOfSite[u]) {
        ++crossings;
      }
    }
  }
  // The cut surface should be roughly one tube cross-section of links, far
  // smaller than the total edge count.
  EXPECT_LT(crossings * 20, static_cast<int>(graph_->adjncy.size() / 2));
}

TEST_F(PartitionFixture, MetricsCommVolumeAtLeastBoundary) {
  MultilevelKWayPartitioner kway;
  const auto p = kway.partition(*graph_, 8);
  const auto m = evaluatePartition(*graph_, p);
  EXPECT_GE(m.commVolume, m.boundaryVertices);
  EXPECT_GE(m.avgNeighborParts, 1.0);
  EXPECT_LE(m.avgNeighborParts, 7.0);
}

TEST_F(PartitionFixture, WeightedPartitionBalancesWeight) {
  // Double the weight of sites in the aneurysm half; the partitioner must
  // balance *weight*, not site count.
  SiteGraph g = *graph_;
  const int midX = lattice_->dims().x / 2;
  for (std::uint64_t v = 0; v < g.numVertices; ++v) {
    if (g.coords[v].x > midX) g.vertexWeight[v] = 3.0;
  }
  SfcPartitioner sfc;
  const auto p = sfc.partition(g, 4);
  const auto loads = p.partLoads(g);
  EXPECT_LT(imbalanceFactor(loads), 1.2);
  // Site *counts* must now be skewed.
  std::vector<double> siteCounts(4, 0.0);
  for (const int q : p.partOfSite) siteCounts[static_cast<std::size_t>(q)] += 1;
  EXPECT_GT(imbalanceFactor(siteCounts), 1.2);
}

TEST_F(PartitionFixture, RebalanceReducesMeasuredImbalance) {
  MultilevelKWayPartitioner kway;
  const auto p = kway.partition(*graph_, 4);
  // Simulate a measured per-site cost where one region got expensive (e.g.
  // in situ vis concentrated in the aneurysm).
  std::vector<double> cost(static_cast<std::size_t>(graph_->numVertices), 1.0);
  const int midX = lattice_->dims().x / 2;
  for (std::uint64_t v = 0; v < graph_->numVertices; ++v) {
    if (graph_->coords[v].x > midX) cost[v] = 4.0;
  }
  const auto r = rebalance(*graph_, p, cost);
  EXPECT_GT(r.imbalanceBefore, 1.3);
  EXPECT_LT(r.imbalanceAfter, r.imbalanceBefore);
  EXPECT_LT(r.imbalanceAfter, 1.25);
  EXPECT_GT(r.sitesMoved, 0u);
  // Validity preserved.
  std::vector<std::uint64_t> count(4, 0);
  for (const int q : r.partition.partOfSite) {
    ASSERT_GE(q, 0);
    ASSERT_LT(q, 4);
    ++count[static_cast<std::size_t>(q)];
  }
  for (const auto c : count) EXPECT_GT(c, 0u);
}

TEST_F(PartitionFixture, RebalanceNoopWhenBalanced) {
  MultilevelKWayPartitioner kway;
  const auto p = kway.partition(*graph_, 4);
  std::vector<double> cost(static_cast<std::size_t>(graph_->numVertices), 1.0);
  RepartitionOptions opt;
  opt.targetImbalance = 1.10;
  const auto r = rebalance(*graph_, p, cost, opt);
  if (r.imbalanceBefore <= opt.targetImbalance) {
    EXPECT_EQ(r.sitesMoved, 0u);
  }
  EXPECT_LE(r.imbalanceAfter, r.imbalanceBefore + 1e-12);
}

// --- Repartitioner regression/property tests on a hand-built grid graph ---

/// W x H grid with 8-neighbourhood links (a 2-D slice of the lattice
/// adjacency) — small enough to reason about boundary shapes exactly.
SiteGraph makeGridGraph(int w, int h) {
  SiteGraph g;
  g.numVertices = static_cast<std::uint64_t>(w) * static_cast<std::uint64_t>(h);
  g.xadj.push_back(0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const int nx = x + dx;
          const int ny = y + dy;
          if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
          g.adjncy.push_back(static_cast<std::uint64_t>(ny) * w + nx);
        }
      }
      g.xadj.push_back(g.adjncy.size());
      g.vertexWeight.push_back(1.0);
      g.coords.push_back({x, y, 0});
    }
  }
  return g;
}

/// Number of connected components of the subgraph induced by part `p`.
int partComponents(const SiteGraph& g, const std::vector<int>& partOf, int p) {
  std::vector<char> seen(g.numVertices, 0);
  int comps = 0;
  for (std::uint64_t s = 0; s < g.numVertices; ++s) {
    if (partOf[s] != p || seen[s]) continue;
    ++comps;
    std::vector<std::uint64_t> stack{s};
    seen[s] = 1;
    while (!stack.empty()) {
      const auto v = stack.back();
      stack.pop_back();
      for (std::uint64_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
        const auto u = g.adjncy[e];
        if (partOf[u] == p && !seen[u]) {
          seen[u] = 1;
          stack.push_back(u);
        }
      }
    }
  }
  return comps;
}

/// Sites with no same-part neighbour (in a part of size > 1).
int singleSiteIslands(const SiteGraph& g, const std::vector<int>& partOf,
                      int numParts) {
  std::vector<std::uint64_t> count(static_cast<std::size_t>(numParts), 0);
  for (const int p : partOf) ++count[static_cast<std::size_t>(p)];
  int islands = 0;
  for (std::uint64_t v = 0; v < g.numVertices; ++v) {
    if (count[static_cast<std::size_t>(partOf[v])] <= 1) continue;
    bool hasFriend = false;
    for (std::uint64_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      if (partOf[g.adjncy[e]] == partOf[v]) {
        hasFriend = true;
        break;
      }
    }
    if (!hasFriend) ++islands;
  }
  return islands;
}

// Regression for the boundary-shred guard: this exact configuration (4x5
// grid, three vertical strips, measured costs below) fragments under the
// pre-fix diffusion — which picked the least-loaded *adjacent* part with no
// regard for connectivity, detaching a single-site island and splitting a
// part into two components. With the guard (receiver must touch the site
// with at least as many links as any other foreign part) every part stays
// connected.
TEST(RebalanceGuard, PreventsBoundaryFragmentation) {
  const int w = 4;
  const int h = 5;
  const SiteGraph g = makeGridGraph(w, h);
  Partition start;
  start.numParts = 3;
  start.partOfSite = {0, 0, 1, 2, 0, 0, 1, 2, 0, 0, 1, 2,
                      0, 0, 1, 2, 0, 0, 1, 2};
  const std::vector<double> cost = {22.8, 12.0, 25.5, 11.0, 19.2, 12.0, 27.0,
                                    14.0, 14.4, 14.4, 22.5, 16.0, 15.6, 22.8,
                                    15.0, 14.0, 14.4, 21.6, 19.5, 13.0};
  const auto r = rebalance(g, start, cost);
  EXPECT_LT(r.imbalanceAfter, r.imbalanceBefore);
  for (int p = 0; p < start.numParts; ++p) {
    EXPECT_LE(partComponents(g, r.partition.partOfSite, p), 1)
        << "part " << p << " fragmented";
  }
  EXPECT_EQ(singleSiteIslands(g, r.partition.partOfSite, start.numParts), 0);
}

TEST_F(PartitionFixture, RebalanceCountsDistinctMigratedSites) {
  MultilevelKWayPartitioner kway;
  const auto p = kway.partition(*graph_, 4);
  std::vector<double> cost(static_cast<std::size_t>(graph_->numVertices), 1.0);
  const int midX = lattice_->dims().x / 2;
  for (std::uint64_t v = 0; v < graph_->numVertices; ++v) {
    if (graph_->coords[v].x > midX) cost[v] = 6.0;
  }
  const auto r = rebalance(*graph_, p, cost);
  // sitesMoved is the *distinct* migration volume: exactly the sites whose
  // final owner differs from their starting owner, never more than the
  // lattice holds.
  std::uint64_t distinct = 0;
  for (std::uint64_t v = 0; v < graph_->numVertices; ++v) {
    if (r.partition.partOfSite[v] != p.partOfSite[v]) ++distinct;
  }
  EXPECT_EQ(r.sitesMoved, distinct);
  EXPECT_LE(r.sitesMoved, graph_->numVertices);
  EXPECT_GT(r.sitesMoved, 0u);
}

TEST_F(PartitionFixture, RebalanceImbalanceMonotonePerPass) {
  MultilevelKWayPartitioner kway;
  const auto p = kway.partition(*graph_, 4);
  std::vector<double> cost(static_cast<std::size_t>(graph_->numVertices), 1.0);
  const int midX = lattice_->dims().x / 2;
  for (std::uint64_t v = 0; v < graph_->numVertices; ++v) {
    if (graph_->coords[v].x > midX) cost[v] = 8.0;
  }
  const auto r = rebalance(*graph_, p, cost);
  ASSERT_EQ(static_cast<int>(r.passImbalance.size()), r.passesUsed);
  ASSERT_GT(r.passesUsed, 0);
  // Every accepted move is strictly downhill, so the measured imbalance
  // never rises between passes and ends exactly at imbalanceAfter.
  double prev = r.imbalanceBefore;
  for (const double f : r.passImbalance) {
    EXPECT_LE(f, prev + 1e-12);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(r.passImbalance.back(), r.imbalanceAfter);
}

TEST_F(PartitionFixture, RebalanceRepeatedCallsDoNotStall) {
  // Satellite check for the (proven-invariant) pass-loop mean: feeding the
  // result of one rebalance into the next with *updated* measured costs must
  // keep improving the measured imbalance, not stall above target.
  MultilevelKWayPartitioner kway;
  auto current = kway.partition(*graph_, 4);
  const int midX = lattice_->dims().x / 2;
  auto costWith = [&](double hot) {
    std::vector<double> cost(static_cast<std::size_t>(graph_->numVertices),
                             1.0);
    for (std::uint64_t v = 0; v < graph_->numVertices; ++v) {
      if (graph_->coords[v].x > midX) cost[v] = hot;
    }
    return cost;
  };
  RepartitionOptions opt;
  opt.maxPasses = 8;  // deliberately too few to converge in one call
  const auto first = rebalance(*graph_, current, costWith(6.0), opt);
  // Costs drift between windows (the hot region cooled a little).
  const auto second =
      rebalance(*graph_, first.partition, costWith(5.0), opt);
  EXPECT_LT(second.imbalanceAfter, second.imbalanceBefore + 1e-12);
  const auto third =
      rebalance(*graph_, second.partition, costWith(5.0), opt);
  EXPECT_LE(third.imbalanceAfter, second.imbalanceAfter + 1e-12);
}

TEST_F(PartitionFixture, RebalanceMovesScaleWithImbalance) {
  MultilevelKWayPartitioner kway;
  const auto p = kway.partition(*graph_, 4);
  auto costWith = [&](double hot) {
    std::vector<double> cost(static_cast<std::size_t>(graph_->numVertices),
                             1.0);
    const int midX = lattice_->dims().x / 2;
    for (std::uint64_t v = 0; v < graph_->numVertices; ++v) {
      if (graph_->coords[v].x > midX) cost[v] = hot;
    }
    return cost;
  };
  const auto mild = rebalance(*graph_, p, costWith(1.5));
  const auto severe = rebalance(*graph_, p, costWith(8.0));
  EXPECT_LT(mild.sitesMoved, severe.sitesMoved);
}

}  // namespace
}  // namespace hemo::partition
