// Tests for the extension features: VTK writers, pathline recording,
// adaptive in situ scheduling, mesh refinement with solution transfer, and
// checkpoint-based failure recovery (the §III resiliency path).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "core/preprocess.hpp"
#include "core/refine.hpp"
#include "core/scheduler.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "io/vtk.hpp"
#include "lb/checkpoint.hpp"
#include "vis/particles.hpp"
#include "vis/sampler.hpp"

namespace hemo {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

// --- VTK -------------------------------------------------------------------------

TEST(Vtk, PointsWithAttributes) {
  const std::string path = "/tmp/hemo_test_pts.vtk";
  io::VtkScalars wss{"wss", {0.5, 1.5}};
  io::VtkVectors vel{"velocity", {{1, 0, 0}, {0, 2, 0}}};
  ASSERT_TRUE(io::writeVtkPoints(path, {{0, 0, 0}, {1, 1, 1}}, {wss}, {vel}));
  const auto body = slurp(path);
  EXPECT_NE(body.find("# vtk DataFile Version 3.0"), std::string::npos);
  EXPECT_NE(body.find("POINTS 2 double"), std::string::npos);
  EXPECT_NE(body.find("SCALARS wss double 1"), std::string::npos);
  EXPECT_NE(body.find("VECTORS velocity double"), std::string::npos);
  EXPECT_NE(body.find("POINT_DATA 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vtk, AttributeSizeMismatchThrows) {
  io::VtkScalars bad{"x", {1.0}};
  EXPECT_THROW(
      io::writeVtkPoints("/tmp/x.vtk", {{0, 0, 0}, {1, 1, 1}}, {bad}, {}),
      CheckError);
}

TEST(Vtk, Polylines) {
  const std::string path = "/tmp/hemo_test_lines.vtk";
  std::vector<std::vector<Vec3f>> lines = {
      {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}}, {{0, 1, 0}, {1, 1, 0}}};
  ASSERT_TRUE(io::writeVtkPolylines(path, lines));
  const auto body = slurp(path);
  EXPECT_NE(body.find("POINTS 5 float"), std::string::npos);
  EXPECT_NE(body.find("LINES 2 7"), std::string::npos);
  EXPECT_NE(body.find("3 0 1 2"), std::string::npos);
  EXPECT_NE(body.find("2 3 4"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vtk, StructuredImage) {
  const std::string path = "/tmp/hemo_test_img.vtk";
  ASSERT_TRUE(io::writeVtkImage(path, 2, 2, {0.f, 0.25f, 0.5f, 1.f}, "lic"));
  const auto body = slurp(path);
  EXPECT_NE(body.find("DIMENSIONS 2 2 1"), std::string::npos);
  EXPECT_NE(body.find("SCALARS lic float 1"), std::string::npos);
  std::remove(path.c_str());
}

// --- pathlines -----------------------------------------------------------------------

TEST(Pathlines, RecordedAcrossMigrationsAndStitched) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  const auto lat = geometry::voxelize(geometry::makeStraightTube(6.0, 1.0), opt);
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 4);

  comm::Runtime rt(4);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    lb::MacroFields macro;
    macro.rho.assign(domain.numOwned(), 1.0);
    macro.u.assign(domain.numOwned(), Vec3d{0.2, 0, 0});
    vis::GhostedField field(domain, comm, 2);
    field.refresh(macro, comm);

    vis::TracerSwarm swarm(field);
    swarm.inject(comm, {{0.5, 0, 0}, {0.5, 0.3, 0}});
    vis::PathlineRecorder recorder;
    recorder.record(swarm);
    for (int s = 0; s < 50; ++s) {
      swarm.advect(comm);
      recorder.record(swarm);
    }
    const auto lines = recorder.gather(comm);
    if (comm.rank() == 0) {
      ASSERT_EQ(lines.size(), 2u);
      for (const auto& line : lines) {
        // 51 samples (injection + 50 advections), x strictly increasing.
        ASSERT_EQ(line.vertices.size(), 51u);
        for (std::size_t v = 1; v < line.vertices.size(); ++v) {
          EXPECT_GT(line.vertices[v].x, line.vertices[v - 1].x);
          // Uniform axial flow: y stays put.
          EXPECT_NEAR(line.vertices[v].y, line.vertices[0].y, 1e-5);
        }
      }
    }
  });
}

// --- adaptive scheduler -----------------------------------------------------------------

TEST(Scheduler, PicksCadenceMatchingBudget) {
  core::AdaptiveVisScheduler sched(0.10);  // at most 10% in situ share
  // step = 1 ms, pipeline = 9 ms -> need every >= 9*0.9/0.1 = 81.
  sched.observe(1e-3, 9e-3);
  EXPECT_EQ(sched.recommendedEvery(), 81);
  EXPECT_LE(sched.predictedShare(sched.recommendedEvery()), 0.10 + 1e-9);
}

TEST(Scheduler, SmoothsNoisySamples) {
  core::AdaptiveVisScheduler sched(0.5);
  sched.observe(1e-3, 1e-3);
  const int before = sched.recommendedEvery();
  sched.observe(1e-3, 100e-3);  // one spike
  // EMA: the estimate moves but not all the way to the spike.
  EXPECT_LT(sched.pipelineCostEstimate(), 50e-3);
  EXPECT_GE(sched.recommendedEvery(), before);
}

TEST(Scheduler, ClampsToBounds) {
  core::AdaptiveVisScheduler sched(0.9, 2, 10);
  sched.observe(1.0, 1e-9);  // pipeline ~free -> clamp at minEvery
  EXPECT_EQ(sched.recommendedEvery(), 2);
  core::AdaptiveVisScheduler tight(0.001, 1, 10);
  tight.observe(1e-6, 1.0);  // pipeline huge -> clamp at maxEvery
  EXPECT_EQ(tight.recommendedEvery(), 10);
  EXPECT_THROW(core::AdaptiveVisScheduler(1.5), CheckError);
}

TEST(Scheduler, DriverAdaptsVisEvery) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  const auto lat =
      geometry::voxelize(geometry::makeStraightTube(4.0, 1.0), opt);
  core::PreprocessConfig pcfg;
  const auto pre = core::preprocess(lat, 2, pcfg);
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, pre.partition, comm.rank());
    core::DriverConfig cfg;
    cfg.lb.computeStress = true;
    cfg.visEvery = 1;  // start far too aggressive
    cfg.statusEvery = 0;
    cfg.adaptiveVisBudget = 0.05;  // pipeline may use 5% of runtime
    cfg.render.width = 256;        // deliberately expensive render
    cfg.render.height = 256;
    core::SimulationDriver driver(domain, comm, cfg);
    driver.run(30);
    // The expensive pipeline must have pushed the cadence well above 1.
    EXPECT_GT(driver.currentVisEvery(), 2);
  });
}

// --- mesh refinement / solution transfer ----------------------------------------------------

TEST(Refine, WarmStartReproducesCoarseFieldAndConverges) {
  // Coarse Poiseuille solution -> transfer onto a 2x finer lattice -> the
  // fine solver starts close to the flow instead of at rest.
  const auto scene = geometry::makeStraightTube(4.0, 1.0);
  geometry::VoxelizeOptions coarseOpt, fineOpt;
  coarseOpt.voxelSize = 0.25;
  fineOpt.voxelSize = 0.125;
  const auto coarseLat = geometry::voxelize(scene, coarseOpt);
  const auto fineLat = geometry::voxelize(scene, fineOpt);

  lb::LbParams params;
  params.tau = 0.8;
  params.bodyForce = {1e-5, 0, 0};

  // 1. Coarse run to (near) steady state, on 2 ranks.
  core::GlobalMacro coarse;
  {
    const auto graph = partition::buildSiteGraph(coarseLat);
    partition::MultilevelKWayPartitioner kway;
    const auto part = kway.partition(graph, 2);
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(coarseLat, part, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, params);
      solver.run(1500);
      auto g = core::gatherGlobalMacro(comm, domain, solver.macro());
      if (comm.rank() == 0) coarse = std::move(g);
    });
  }
  ASSERT_EQ(coarse.rho.size(), coarseLat.numFluidSites());
  double coarseMax = 0.0;
  for (const auto& u : coarse.u) coarseMax = std::max(coarseMax, u.norm());
  ASSERT_GT(coarseMax, 1e-4);

  // 2. Fine warm start: initial velocity field ≈ the coarse solution.
  // Note the lattice-unit rescale: u_fine = u_coarse * (h_coarse/h_fine)
  // would apply for matched physical velocity per step; we keep the same
  // lattice forcing instead, so the *steady state* of the fine run is its
  // own — the warm start just needs to be much closer to it than rest.
  {
    const auto graph = partition::buildSiteGraph(fineLat);
    partition::MultilevelKWayPartitioner kway;
    const auto part = kway.partition(graph, 2);
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(fineLat, part, comm.rank());
      lb::SolverD3Q19 warm(domain, comm, params);
      core::initFromCoarse(warm, coarseLat, coarse);
      // Warm start carries momentum from step 0.
      const double warmP0 = comm.allreduceSum(warm.localMomentum().x);
      EXPECT_GT(warmP0, 0.0);

      lb::SolverD3Q19 cold(domain, comm, params);
      const double coldP0 = comm.allreduceSum(cold.localMomentum().x);
      EXPECT_NEAR(coldP0, 0.0, 1e-12);

      // After a short burn-in the warm run is closer to its final state:
      // compare axial momentum against a long reference run.
      warm.run(150);
      cold.run(150);
      lb::SolverD3Q19 reference(domain, comm, params);
      core::initFromCoarse(reference, coarseLat, coarse);
      reference.run(1500);
      const double pRef = comm.allreduceSum(reference.localMomentum().x);
      const double pWarm = comm.allreduceSum(warm.localMomentum().x);
      const double pCold = comm.allreduceSum(cold.localMomentum().x);
      EXPECT_LT(std::abs(pWarm - pRef), std::abs(pCold - pRef));
    });
  }
}

// --- resiliency: fail + restart ---------------------------------------------------------------

TEST(Resiliency, CrashMidRunThenRestartFromCheckpoint) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  const auto lat =
      geometry::voxelize(geometry::makeStraightTube(4.0, 1.0), opt);
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 3);
  lb::LbParams params;
  params.tau = 0.8;
  params.bodyForce = {1e-5, 0, 0};
  const std::string ckpt = "/tmp/hemo_test_resil.bin";

  // Run 20 steps, checkpoint at 10, then rank 1 "dies" at step 14.
  comm::Runtime rt(3);
  EXPECT_THROW(
      rt.run([&](comm::Communicator& comm) {
        lb::DomainMap domain(lat, part, comm.rank());
        lb::SolverD3Q19 solver(domain, comm, params);
        solver.run(10);
        lb::writeCheckpoint(ckpt, solver, comm);
        solver.run(4);
        if (comm.rank() == 1) {
          throw std::runtime_error("injected node failure");
        }
        solver.run(100);  // survivors get aborted instead of hanging
      }),
      std::runtime_error);

  // Recovery: fresh job (even a different rank count) restores step 10
  // and finishes; final state equals an uninterrupted run.
  std::vector<Vec3d> recovered(lat.numFluidSites());
  {
    partition::RcbPartitioner rcb;
    const auto part2 = rcb.partition(graph, 2);
    comm::Runtime rt2(2);
    rt2.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part2, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, params);
      const auto restored = lb::readCheckpoint(ckpt, solver, comm);
      EXPECT_TRUE(restored.ok()) << restored.detail;
      EXPECT_EQ(restored.step, 10u);
      solver.run(10);
      for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
        recovered[static_cast<std::size_t>(domain.globalOf(l))] =
            solver.macro().u[l];
      }
    });
  }
  std::vector<Vec3d> reference(lat.numFluidSites());
  {
    comm::Runtime rt3(3);
    rt3.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, params);
      solver.run(20);
      for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
        reference[static_cast<std::size_t>(domain.globalOf(l))] =
            solver.macro().u[l];
      }
    });
  }
  for (std::size_t g = 0; g < reference.size(); ++g) {
    EXPECT_NEAR((recovered[g] - reference[g]).norm(), 0.0, 1e-13);
  }
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace hemo
