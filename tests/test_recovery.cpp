// Shrink-and-continue rank-failure recovery: liveness detection (typed
// PeerDeadError instead of hangs), the cross-rank agreement round, survivor
// communicator shrink, rank-count-independent checkpoint restore, diskless
// buddy checkpoints, end-to-end kill/hang-mid-step recovery through
// ResilientRunner (disk, buddy and cold-restart ladders, serving-plane
// survival), and the bounded teardown join.
//
// Registered under the `resilience` ctest label.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "comm/liveness.hpp"
#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "core/recovery.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "lb/buddy.hpp"
#include "lb/checkpoint.hpp"
#include "lb/solver.hpp"
#include "partition/partitioners.hpp"
#include "serve/broker.hpp"
#include "serve/client.hpp"
#include "util/faultinject.hpp"
#include "util/timer.hpp"

namespace hemo {
namespace {

geometry::SparseLattice tubeLattice(double length = 4.0) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  return geometry::voxelize(geometry::makeStraightTube(length, 1.0), opt);
}

lb::LbParams tubeParams() {
  lb::LbParams p;
  p.tau = 0.8;
  p.bodyForce = {1e-5, 0, 0};
  return p;
}

core::DriverConfig plainDriverConfig() {
  core::DriverConfig dcfg;
  dcfg.lb.tau = 0.8;
  dcfg.lb.bodyForce = {1e-5, 0, 0};
  dcfg.computeWss = false;
  dcfg.visEvery = 0;
  dcfg.statusEvery = 0;
  // Keep the process-global flight registry disarmed: the disk tests'
  // checkpoint dirs (the bundle-dir fallback) are deleted between tests,
  // and later injected kills would warn about flushing into them.
  dcfg.flight.enabled = false;
  return dcfg;
}

/// Gather this rank's velocity field into a global array for exact
/// cross-run comparison (the LB update is per-site, so fields are
/// bit-reproducible across any rank count / partition).
void collectU(const lb::DomainMap& domain, const lb::SolverD3Q19& solver,
              std::vector<Vec3d>& u) {
  for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
    u[static_cast<std::size_t>(domain.globalOf(l))] = solver.macro().u[l];
  }
}

/// Uninterrupted serial reference of `steps` steps.
std::vector<Vec3d> serialReference(const geometry::SparseLattice& lat,
                                   int steps) {
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 1);
  std::vector<Vec3d> u(lat.numFluidSites());
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    lb::SolverD3Q19 solver(domain, comm, tubeParams());
    solver.run(steps);
    collectU(domain, solver, u);
  });
  return u;
}

void expectMatchesReference(const std::vector<Vec3d>& got,
                            const std::vector<Vec3d>& reference) {
  ASSERT_EQ(got.size(), reference.size());
  for (std::size_t g = 0; g < reference.size(); ++g) {
    ASSERT_NEAR((got[g] - reference[g]).norm(), 0.0, 1e-13) << "site " << g;
  }
}

// --- liveness primitives ----------------------------------------------------

TEST(Liveness, DeathBoardEpochCountsDeclaredDeaths) {
  comm::DeathBoard board(4);
  EXPECT_EQ(board.epoch(), 0u);
  EXPECT_FALSE(board.dead(2));
  EXPECT_TRUE(board.declareDead(2));
  EXPECT_FALSE(board.declareDead(2));  // idempotent, no double bump
  EXPECT_EQ(board.epoch(), 1u);
  EXPECT_TRUE(board.dead(2));
  EXPECT_TRUE(board.declareDead(0));
  EXPECT_EQ(board.epoch(), 2u);
  EXPECT_EQ(board.deadSet(), (std::vector<int>{0, 2}));

  EXPECT_FALSE(board.exited(1));
  board.markCrashed(1);
  EXPECT_TRUE(board.exited(1));
  EXPECT_FALSE(board.finished(1));
  board.markFinished(3);
  EXPECT_TRUE(board.finished(3));

  board.reset();
  EXPECT_EQ(board.epoch(), 0u);
  EXPECT_FALSE(board.dead(2));
}

TEST(Liveness, BlockedRecvSurfacesTypedErrorInsteadOfHanging) {
  // Rank 1 dies without ever sending; rank 0's blocking recv must surface
  // PeerDeadError (via the crashed-thread evidence) within the poll
  // cadence, not hang for the 120 s deadlock backstop.
  comm::Runtime rt(2);
  rt.setLiveness({true, 500, 5});
  comm::RunOptions opt;
  opt.tolerateRankDeath = true;
  WallTimer timer;
  rt.run(
      [&](comm::Communicator& comm) {
        if (comm.rank() == 1) {
          throw util::RankKilledError("simulated crash before send");
        }
        EXPECT_THROW(comm.recvBytes(1, 7), comm::PeerDeadError);
      },
      opt);
  EXPECT_LT(timer.seconds(), 30.0);
  EXPECT_EQ(rt.toleratedDeaths(), (std::vector<int>{1}));
  EXPECT_TRUE(rt.deathBoard().dead(1));
}

TEST(Agreement, SurvivorsConvergeOnIdenticalDeadSetAndShrunkenComm) {
  const comm::LivenessConfig cfg{true, 500, 5};
  comm::Runtime rt(4);
  rt.setLiveness(cfg);
  comm::RunOptions opt;
  opt.tolerateRankDeath = true;
  std::vector<std::vector<int>> agreed(4);
  std::vector<int> shrunkenSizes(4, 0);
  rt.run(
      [&](comm::Communicator& comm) {
        if (comm.worldRank() == 2) {
          throw util::RankKilledError("simulated death");
        }
        auto& board = rt.deathBoard();
        board.declareDead(2);
        agreed[static_cast<std::size_t>(comm.worldRank())] =
            core::agreeOnDeadSet(comm, board, cfg);
        auto small = comm.shrink(
            agreed[static_cast<std::size_t>(comm.worldRank())]);
        // The shrunken communicator is fully collective-capable.
        shrunkenSizes[static_cast<std::size_t>(comm.worldRank())] =
            small.allreduceSum(1);
        small.barrier();
      },
      opt);
  for (const int w : {0, 1, 3}) {
    EXPECT_EQ(agreed[static_cast<std::size_t>(w)], (std::vector<int>{2}))
        << "world rank " << w;
    EXPECT_EQ(shrunkenSizes[static_cast<std::size_t>(w)], 3);
  }
}

// --- rank-count-independent restore ----------------------------------------

TEST(Recovery, CheckpointRestoresOntoFewerRanksAcrossStripings) {
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  const auto params = tubeParams();
  partition::MultilevelKWayPartitioner kway;
  const std::string dir = "/tmp/hemo_test_rankcount_ckpt";
  const auto reference = serialReference(lat, 30);

  for (const int writers : {4, 8}) {
    for (const int stripes : {1, 2, 4}) {
      std::filesystem::remove_all(dir);
      std::filesystem::create_directories(dir);
      const std::string path = dir + "/ckpt.hemockpt";
      // Write the step-10 checkpoint on `writers` ranks.
      {
        const auto part = kway.partition(graph, writers);
        comm::Runtime rt(writers);
        rt.run([&](comm::Communicator& comm) {
          lb::DomainMap domain(lat, part, comm.rank());
          lb::SolverD3Q19 solver(domain, comm, params);
          solver.run(10);
          lb::writeCheckpoint(path, solver, comm, {stripes});
        });
      }
      // Restore onto the survivor counts a single/double rank death
      // leaves, finish the run, and demand the uninterrupted reference.
      for (const int readers : {writers - 1, writers - 2}) {
        const auto part = kway.partition(graph, readers);
        std::vector<Vec3d> u(lat.numFluidSites());
        comm::Runtime rt(readers);
        rt.run([&](comm::Communicator& comm) {
          lb::DomainMap domain(lat, part, comm.rank());
          lb::SolverD3Q19 solver(domain, comm, params);
          const auto r = lb::readCheckpoint(path, solver, comm);
          ASSERT_TRUE(r.ok()) << "writers=" << writers
                              << " stripes=" << stripes
                              << " readers=" << readers << ": " << r.detail;
          EXPECT_EQ(r.step, 10u);
          solver.run(20);
          collectU(domain, solver, u);
        });
        expectMatchesReference(u, reference);
      }
    }
  }
  std::filesystem::remove_all(dir);
}

// --- diskless buddy checkpoints ---------------------------------------------

TEST(Recovery, BuddySnapshotRestoresOntoSurvivorsFromRamOnly) {
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  const auto params = tubeParams();
  partition::MultilevelKWayPartitioner kway;
  const auto reference = serialReference(lat, 20);

  lb::BuddyStore store;
  // Mirror at step 6 on four ranks: each holder keeps its own blob plus
  // the ring predecessor's.
  {
    const auto part = kway.partition(graph, 4);
    comm::Runtime rt(4);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, params);
      solver.run(6);
      lb::mirrorBuddy(solver, comm, store);
    });
  }
  EXPECT_GT(store.bytesHeld(), 0u);
  ASSERT_EQ(store.heldBy(0).size(), 2u);  // own blob + buddy of rank 3

  // Rank 3 dies: its memory is gone. The survivors still cover the whole
  // lattice (rank 3's blob lives in rank 0's memory) and restore onto a
  // fresh 3-way decomposition without touching the filesystem.
  store.dropHolder(3);
  {
    const auto part = kway.partition(graph, 3);
    std::vector<Vec3d> u(lat.numFluidSites());
    comm::Runtime rt(3);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, params);
      const auto r = lb::restoreFromBuddy(store, solver, comm);
      ASSERT_TRUE(r.ok()) << r.detail;
      EXPECT_EQ(r.step, 6u);
      EXPECT_EQ(solver.stepsDone(), 6u);
      solver.run(14);
      collectU(domain, solver, u);
    });
    expectMatchesReference(u, reference);
  }

  // Adjacent double death (holders 2 and 3): rank 2's blob existed only in
  // its own and rank 3's memory — restore must report the gap as a typed
  // miss, leaving the solver untouched for the disk/cold fallback.
  store.dropHolder(2);
  {
    const auto part = kway.partition(graph, 2);
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, params);
      const auto r = lb::restoreFromBuddy(store, solver, comm);
      EXPECT_EQ(r.status, lb::CkptStatus::kOpenFailed);
      EXPECT_EQ(solver.stepsDone(), 0u);
    });
  }
}

// --- end-to-end shrink-and-continue ----------------------------------------

TEST(Recovery, KillMidStepRecoversFromDiskAndMatchesReference) {
  const auto lat = tubeLattice();
  partition::MultilevelKWayPartitioner kway;
  const std::string dir = "/tmp/hemo_test_recover_disk";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto reference = serialReference(lat, 20);

  auto cfg = plainDriverConfig();
  cfg.checkpointEvery = 5;
  cfg.checkpointDir = dir;

  core::RecoveryConfig rcfg;
  rcfg.liveness = {true, 2000, 5};

  // World rank 2 dies at its 8th step — after the step-5 checkpoint.
  util::FaultScope scope(17);
  util::FaultRule rule;
  rule.site = util::FaultSite::kDriverStep;
  rule.action = util::FaultAction::kKill;
  rule.rank = 2;
  rule.afterHits = 7;
  rule.maxFires = 1;
  scope.rule(rule);

  std::vector<Vec3d> u(lat.numFluidSites());
  core::ResilientRunner runner(lat, kway, cfg, rcfg);
  const auto result = runner.run(
      4, 20,
      [&](const lb::DomainMap& domain, core::SimulationDriver& driver,
          comm::Communicator&) { collectU(domain, driver.solver(), u); });

  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_EQ(result.survivors, 3);
  EXPECT_EQ(result.finalStep, 20u);
  ASSERT_EQ(result.events.size(), 1u);
  EXPECT_EQ(result.events[0].deadWorldRanks, (std::vector<int>{2}));
  EXPECT_EQ(result.events[0].survivors, 3);
  EXPECT_EQ(result.events[0].restoredStep, 5u);
  EXPECT_FALSE(result.events[0].usedBuddy);
  EXPECT_FALSE(result.events[0].coldRestart);
  expectMatchesReference(u, reference);
  std::filesystem::remove_all(dir);
}

TEST(Recovery, KillMidStepRecoversFromBuddyWithoutFilesystem) {
  const auto lat = tubeLattice();
  partition::MultilevelKWayPartitioner kway;
  const auto reference = serialReference(lat, 20);

  auto cfg = plainDriverConfig();
  cfg.checkpointEvery = 5;  // mirror cadence; checkpointDir stays empty

  core::RecoveryConfig rcfg;
  rcfg.liveness = {true, 2000, 5};
  rcfg.buddy = true;

  util::FaultScope scope(23);
  util::FaultRule rule;
  rule.site = util::FaultSite::kDriverStep;
  rule.action = util::FaultAction::kKill;
  rule.rank = 1;
  rule.afterHits = 7;
  rule.maxFires = 1;
  scope.rule(rule);

  std::vector<Vec3d> u(lat.numFluidSites());
  core::ResilientRunner runner(lat, kway, cfg, rcfg);
  const auto result = runner.run(
      4, 20,
      [&](const lb::DomainMap& domain, core::SimulationDriver& driver,
          comm::Communicator&) { collectU(domain, driver.solver(), u); });

  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_EQ(result.survivors, 3);
  EXPECT_EQ(result.finalStep, 20u);
  ASSERT_EQ(result.events.size(), 1u);
  EXPECT_EQ(result.events[0].deadWorldRanks, (std::vector<int>{1}));
  EXPECT_TRUE(result.events[0].usedBuddy);
  EXPECT_EQ(result.events[0].restoredStep, 5u);
  expectMatchesReference(u, reference);
}

TEST(Recovery, HungRankIsAccusedByTimeoutAndRunRecovers) {
  const auto lat = tubeLattice();
  partition::MultilevelKWayPartitioner kway;
  const auto reference = serialReference(lat, 16);

  auto cfg = plainDriverConfig();
  cfg.checkpointEvery = 4;

  core::RecoveryConfig rcfg;
  // Short staleness timeout: the hung rank produces no exit evidence, so
  // detection must come from the accusation path.
  rcfg.liveness = {true, 800, 5};
  rcfg.buddy = true;

  util::FaultScope scope(29);
  util::FaultRule rule;
  rule.site = util::FaultSite::kDriverStep;
  rule.action = util::FaultAction::kHang;
  rule.rank = 1;
  rule.afterHits = 5;
  rule.maxFires = 1;
  scope.rule(rule);

  std::vector<Vec3d> u(lat.numFluidSites());
  WallTimer timer;
  core::ResilientRunner runner(lat, kway, cfg, rcfg);
  const auto result = runner.run(
      4, 16,
      [&](const lb::DomainMap& domain, core::SimulationDriver& driver,
          comm::Communicator&) { collectU(domain, driver.solver(), u); });

  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_LT(timer.seconds(), 60.0);  // bounded: no 120 s deadlock backstop
  ASSERT_GE(result.events.size(), 1u);
  EXPECT_TRUE(std::find(result.events[0].deadWorldRanks.begin(),
                        result.events[0].deadWorldRanks.end(),
                        1) != result.events[0].deadWorldRanks.end());
  EXPECT_EQ(result.finalStep, 16u);
  expectMatchesReference(u, reference);
}

TEST(Recovery, KillBeforeAnySnapshotColdRestartsDeterministically) {
  const auto lat = tubeLattice();
  partition::MultilevelKWayPartitioner kway;
  const auto reference = serialReference(lat, 12);

  // No checkpointing, no buddy: the only rung left is the cold restart.
  const auto cfg = plainDriverConfig();
  core::RecoveryConfig rcfg;
  rcfg.liveness = {true, 2000, 5};

  util::FaultScope scope(31);
  util::FaultRule rule;
  rule.site = util::FaultSite::kDriverStep;
  rule.action = util::FaultAction::kKill;
  rule.rank = 3;
  rule.afterHits = 2;
  rule.maxFires = 1;
  scope.rule(rule);

  std::vector<Vec3d> u(lat.numFluidSites());
  core::ResilientRunner runner(lat, kway, cfg, rcfg);
  const auto result = runner.run(
      4, 12,
      [&](const lb::DomainMap& domain, core::SimulationDriver& driver,
          comm::Communicator&) { collectU(domain, driver.solver(), u); });

  ASSERT_TRUE(result.completed) << result.error;
  ASSERT_EQ(result.events.size(), 1u);
  EXPECT_TRUE(result.events[0].coldRestart);
  EXPECT_EQ(result.events[0].restoredStep, 0u);
  EXPECT_EQ(result.finalStep, 12u);
  expectMatchesReference(u, reference);
}

TEST(Recovery, ServingPlaneSurvivesNonRootDeath) {
  const auto lat = tubeLattice();
  partition::MultilevelKWayPartitioner kway;

  auto cfg = plainDriverConfig();
  cfg.checkpointEvery = 4;
  cfg.statusEvery = 2;

  core::RecoveryConfig rcfg;
  rcfg.liveness = {true, 2000, 5};
  rcfg.buddy = true;

  serve::SessionBroker broker;
  serve::ServeClient client(broker.connect());
  client.subscribe(serve::StreamKind::kStatus, 2);

  util::FaultScope scope(37);
  util::FaultRule rule;
  rule.site = util::FaultSite::kDriverStep;
  rule.action = util::FaultAction::kKill;
  rule.rank = 2;  // not the broker's home rank
  rule.afterHits = 7;
  rule.maxFires = 1;
  scope.rule(rule);

  core::ResilientRunner runner(lat, kway, cfg, rcfg);
  const auto result = runner.run(4, 20, {}, &broker);
  ASSERT_TRUE(result.completed) << result.error;
  ASSERT_EQ(result.events.size(), 1u);

  // The client's subscription kept streaming across the recovery: status
  // reports arrived from steps both before and after the kill.
  std::uint64_t minStep = ~std::uint64_t{0};
  std::uint64_t maxStep = 0;
  while (auto event = client.pollEvent()) {
    if (event->type == steer::MsgType::kStatus) {
      minStep = std::min(minStep, event->status.step);
      maxStep = std::max(maxStep, event->status.step);
    }
  }
  EXPECT_LE(minStep, 8u);
  EXPECT_GE(maxStep, 16u);
  broker.closeAll();
}

TEST(Recovery, RootDeathDegradesToSolverOnlyAndCompletes) {
  const auto lat = tubeLattice();
  partition::MultilevelKWayPartitioner kway;
  const auto reference = serialReference(lat, 16);

  auto cfg = plainDriverConfig();
  cfg.checkpointEvery = 4;
  cfg.statusEvery = 2;

  core::RecoveryConfig rcfg;
  rcfg.liveness = {true, 2000, 5};
  rcfg.buddy = true;

  serve::SessionBroker broker;
  serve::ServeClient client(broker.connect());
  client.subscribe(serve::StreamKind::kStatus, 2);

  util::FaultScope scope(41);
  util::FaultRule rule;
  rule.site = util::FaultSite::kDriverStep;
  rule.action = util::FaultAction::kKill;
  rule.rank = 0;  // the broker's home rank dies
  rule.afterHits = 5;
  rule.maxFires = 1;
  scope.rule(rule);

  std::vector<Vec3d> u(lat.numFluidSites());
  core::ResilientRunner runner(lat, kway, cfg, rcfg);
  const auto result = runner.run(
      4, 16,
      [&](const lb::DomainMap& domain, core::SimulationDriver& driver,
          comm::Communicator&) { collectU(domain, driver.solver(), u); },
      &broker);

  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_EQ(result.survivors, 3);
  EXPECT_EQ(result.finalStep, 16u);
  expectMatchesReference(u, reference);
  broker.closeAll();
}

// --- bounded teardown --------------------------------------------------------

TEST(Runtime, TeardownJoinIsBoundedWhenARankIsWedged) {
  // Legacy (non-tolerant) mode: rank 1 is provably wedged at a fault site
  // (never inside a mailbox wait, so aborting mailboxes cannot wake it)
  // before rank 0 fails. The bounded join must escalate — declare the
  // straggler dead, which releases the hang — and rethrow rank 0's error
  // instead of blocking forever.
  util::FaultScope scope(43);  // armed so hangUntilReleased is the real one
  std::atomic<bool> wedged{false};
  comm::Runtime rt(2);
  comm::RunOptions opt;
  opt.joinTimeoutSeconds = 1.0;
  WallTimer timer;
  EXPECT_THROW(rt.run(
                   [&](comm::Communicator& comm) {
                     if (comm.rank() == 1) {
                       wedged.store(true);
                       util::FaultInjector::instance().hangUntilReleased(1);
                     }
                     while (!wedged.load()) {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(1));
                     }
                     throw util::InjectedFaultError("deliberate failure");
                   },
                   opt),
               util::InjectedFaultError);
  // The join waited out the (1 s) teardown window before escalating, and
  // came nowhere near the 120 s deadlock backstop.
  EXPECT_GT(timer.seconds(), 0.5);
  EXPECT_LT(timer.seconds(), 30.0);
}

}  // namespace
}  // namespace hemo
