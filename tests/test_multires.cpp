// Tests for the multi-resolution hierarchy (paper §V): octree invariants,
// hierarchical-index lookups, aggregate exactness, level errors, ROI
// queries, distributed context gathering and progressive drill-down.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "comm/runtime.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "multires/octree.hpp"
#include "multires/progressive.hpp"
#include "multires/roi.hpp"
#include "partition/partitioners.hpp"

namespace hemo::multires {
namespace {

geometry::SparseLattice makeLattice() {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  return geometry::voxelize(geometry::makeAneurysmVessel(5.0, 1.0, 1.0), opt);
}

struct SingleRankTree {
  geometry::SparseLattice lattice;
  partition::Partition part;
  lb::DomainMap domain;
  FieldOctree tree;

  explicit SingleRankTree(int leafLog2 = 0)
      : lattice(makeLattice()),
        part(singlePart()),
        domain(lattice, part, 0),
        tree(domain, leafLog2) {}

  partition::Partition singlePart() {
    partition::Partition p;
    p.numParts = 1;
    p.partOfSite.assign(lattice.numFluidSites(), 0);
    return p;
  }

  /// Scalar field = x coordinate (world), velocity = (x, 2x, 0).
  std::pair<std::vector<double>, std::vector<Vec3d>> fields() const {
    std::vector<double> s(domain.numOwned());
    std::vector<Vec3d> v(domain.numOwned());
    for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
      const Vec3d w = lattice.siteWorld(domain.globalOf(l));
      s[l] = w.x;
      v[l] = {w.x, 2 * w.x, 0};
    }
    return {s, v};
  }
};

// NOTE: the fixture is constructed fresh per test; the lattice is small.

TEST(Octree, StructureInvariants) {
  SingleRankTree t;
  auto& tree = t.tree;
  ASSERT_GE(tree.numLevels(), 4);
  // Root level has exactly one node holding everything.
  EXPECT_EQ(tree.level(0).size(), 1u);
  // Leaf level (leafCellLog2=0) has one node per site.
  EXPECT_EQ(tree.level(tree.leafLevel()).size(),
            t.domain.numOwned());
  // Keys strictly ascending per level; each node's parent exists.
  for (int l = 0; l < tree.numLevels(); ++l) {
    const auto& nodes = tree.level(l);
    for (std::size_t i = 1; i < nodes.size(); ++i) {
      EXPECT_LT(nodes[i - 1].key, nodes[i].key);
    }
    if (l > 0) {
      for (const auto& node : nodes) {
        EXPECT_NE(tree.find(l - 1, mortonParent(node.key)), nullptr);
      }
    }
  }
  // Level sizes shrink monotonically towards the root.
  for (int l = 1; l < tree.numLevels(); ++l) {
    EXPECT_LE(tree.level(l - 1).size(), tree.level(l).size());
  }
}

TEST(Octree, CountsAreConsistentAcrossLevels) {
  SingleRankTree t;
  const auto [s, v] = t.fields();
  t.tree.update(s, v);
  for (int l = 0; l < t.tree.numLevels(); ++l) {
    std::uint64_t total = 0;
    for (const auto& node : t.tree.level(l)) total += node.count;
    EXPECT_EQ(total, t.domain.numOwned()) << "level " << l;
  }
}

TEST(Octree, RootAggregatesMatchDirectComputation) {
  SingleRankTree t;
  const auto [s, v] = t.fields();
  t.tree.update(s, v);
  double sum = 0, mn = 1e30, mx = -1e30;
  for (const double x : s) {
    sum += x;
    mn = std::min(mn, x);
    mx = std::max(mx, x);
  }
  const auto& root = t.tree.level(0)[0];
  EXPECT_NEAR(root.meanScalar, sum / static_cast<double>(s.size()), 1e-3);
  EXPECT_NEAR(root.minScalar, mn, 1e-5);
  EXPECT_NEAR(root.maxScalar, mx, 1e-5);
  EXPECT_NEAR(root.meanVelocity.y, 2.0 * root.meanVelocity.x, 1e-4);
}

TEST(Octree, LeafValuesExact) {
  SingleRankTree t;
  const auto [s, v] = t.fields();
  t.tree.update(s, v);
  const int leaf = t.tree.leafLevel();
  for (std::uint32_t l = 0; l < t.domain.numOwned(); l += 37) {
    const Vec3i p = t.lattice.sitePosition(t.domain.globalOf(l));
    const auto* node = t.tree.find(leaf, morton3(p));
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->count, 1u);
    EXPECT_NEAR(node->meanScalar, s[l], 1e-6);
    EXPECT_EQ(node->minScalar, node->maxScalar);
  }
}

TEST(Octree, LevelErrorDecreasesWithDepth) {
  SingleRankTree t;
  const auto [s, v] = t.fields();
  t.tree.update(s, v);
  double prev = 1e30;
  for (int l = 0; l < t.tree.numLevels(); ++l) {
    const double err = levelError(t.tree, l, s);
    EXPECT_LE(err, prev + 1e-6) << "level " << l;
    prev = err;
  }
  EXPECT_NEAR(levelError(t.tree, t.tree.leafLevel(), s), 0.0, 1e-6);
  EXPECT_GT(levelError(t.tree, 0, s), 0.1);  // root is a single mean
}

TEST(Octree, LevelBytesShrinkTowardsRoot) {
  SingleRankTree t;
  for (int l = 1; l < t.tree.numLevels(); ++l) {
    EXPECT_LE(t.tree.levelBytes(l - 1), t.tree.levelBytes(l));
  }
  EXPECT_EQ(t.tree.levelBytes(0), sizeof(OctreeNode));
}

TEST(Octree, CoarserLeavesReduceNodeCount) {
  SingleRankTree fine(0), coarse(2);
  EXPECT_LT(coarse.tree.level(coarse.tree.leafLevel()).size(),
            fine.tree.level(fine.tree.leafLevel()).size());
  // Counts still cover all sites.
  const auto [s, v] = coarse.fields();
  coarse.tree.update(s, v);
  std::uint64_t total = 0;
  for (const auto& n : coarse.tree.level(coarse.tree.leafLevel())) {
    total += n.count;
  }
  EXPECT_EQ(total, coarse.domain.numOwned());
}

TEST(Octree, QueryReturnsExactlyIntersectingCells) {
  SingleRankTree t;
  const auto [s, v] = t.fields();
  t.tree.update(s, v);
  const int level = t.tree.numLevels() - 2;
  const BoxI roi{{0, 0, 0}, {8, 8, 8}};
  const auto hits = t.tree.query(level, roi);
  std::set<std::uint64_t> hitKeys;
  for (const auto& h : hits) hitKeys.insert(h.key);
  for (const auto& node : t.tree.level(level)) {
    const bool intersects =
        !t.tree.cellBox(level, node.key).intersect(roi).isEmpty();
    EXPECT_EQ(hitKeys.count(node.key) > 0, intersects);
  }
}

TEST(Octree, CellBoxNestsInParent) {
  SingleRankTree t;
  const int l = t.tree.numLevels() - 2;
  for (const auto& node : t.tree.level(l)) {
    const BoxI own = t.tree.cellBox(l, node.key);
    const BoxI parent = t.tree.cellBox(l - 1, mortonParent(node.key));
    EXPECT_EQ(own.intersect(parent), own);
  }
}

TEST(MergeNodes, WeightedMergeIsExact) {
  OctreeNode a;
  a.key = 7;
  a.count = 3;
  a.meanScalar = 1.0f;
  a.minScalar = 0.5f;
  a.maxScalar = 1.5f;
  a.meanVelocity = {1, 0, 0};
  OctreeNode b = a;
  b.count = 1;
  b.meanScalar = 5.0f;
  b.minScalar = 5.0f;
  b.maxScalar = 5.0f;
  b.meanVelocity = {0, 2, 0};
  const auto merged = mergeNodes({{a}, {b}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].count, 4u);
  EXPECT_NEAR(merged[0].meanScalar, 2.0f, 1e-6);  // (3*1 + 1*5)/4
  EXPECT_EQ(merged[0].minScalar, 0.5f);
  EXPECT_EQ(merged[0].maxScalar, 5.0f);
  EXPECT_NEAR(merged[0].meanVelocity.x, 0.75f, 1e-6);
  EXPECT_NEAR(merged[0].meanVelocity.y, 0.5f, 1e-6);
}

TEST(MergeNodes, DistinctKeysPassThroughSorted) {
  OctreeNode a;
  a.key = 9;
  OctreeNode b;
  b.key = 2;
  const auto merged = mergeNodes({{a}, {b}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].key, 2u);
  EXPECT_EQ(merged[1].key, 9u);
}

class DistributedTreeTest : public ::testing::TestWithParam<int> {};

TEST_P(DistributedTreeTest, GatheredContextMatchesSerialTree) {
  const int ranks = GetParam();
  const auto lattice = makeLattice();
  const auto graph = partition::buildSiteGraph(lattice);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, ranks);

  // Serial reference.
  partition::Partition serialPart;
  serialPart.numParts = 1;
  serialPart.partOfSite.assign(lattice.numFluidSites(), 0);
  lb::DomainMap serialDomain(lattice, serialPart, 0);
  FieldOctree serialTree(serialDomain, 0);
  std::vector<double> s(serialDomain.numOwned());
  std::vector<Vec3d> v(serialDomain.numOwned());
  for (std::uint32_t l = 0; l < serialDomain.numOwned(); ++l) {
    const Vec3d w = lattice.siteWorld(serialDomain.globalOf(l));
    s[l] = std::sin(w.x) + w.y;
    v[l] = {w.y, -w.x, 0.1};
  }
  serialTree.update(s, v);
  const int ctxLevel = 2;

  std::vector<OctreeNode> gathered;
  comm::Runtime rt(ranks);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, part, comm.rank());
    FieldOctree tree(domain, 0);
    std::vector<double> ls(domain.numOwned());
    std::vector<Vec3d> lv(domain.numOwned());
    for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
      const Vec3d w = lattice.siteWorld(domain.globalOf(l));
      ls[l] = std::sin(w.x) + w.y;
      lv[l] = {w.y, -w.x, 0.1};
    }
    tree.update(ls, lv);
    auto result = gatherLevel(comm, tree, ctxLevel);
    if (comm.rank() == 0) gathered = std::move(result);
  });

  const auto& reference = serialTree.level(ctxLevel);
  ASSERT_EQ(gathered.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(gathered[i].key, reference[i].key);
    EXPECT_EQ(gathered[i].count, reference[i].count);
    EXPECT_NEAR(gathered[i].meanScalar, reference[i].meanScalar, 1e-4);
    EXPECT_EQ(gathered[i].minScalar, reference[i].minScalar);
    EXPECT_EQ(gathered[i].maxScalar, reference[i].maxScalar);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistributedTreeTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(Drilldown, RoiStagesAreCheaperThanContext) {
  const auto lattice = makeLattice();
  const auto graph = partition::buildSiteGraph(lattice);
  partition::MultilevelKWayPartitioner kway;
  const int ranks = 4;
  const auto part = kway.partition(graph, ranks);

  DrilldownStats stats;
  comm::Runtime rt(ranks);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, part, comm.rank());
    FieldOctree tree(domain, 0);
    std::vector<double> s(domain.numOwned(), 1.0);
    std::vector<Vec3d> v(domain.numOwned(), Vec3d{});
    tree.update(s, v);
    // Small ROI: one corner of the aneurysm dome region.
    const BoxI roi{{8, 8, 8}, {16, 16, 16}};
    auto result =
        progressiveDrilldown(comm, tree, 2, tree.leafLevel(), roi);
    if (comm.rank() == 0) stats = std::move(result);
  });
  ASSERT_GE(stats.bytesPerStage.size(), 3u);
  // The full leaf level would cost ~numSites*sizeof(Node); every ROI stage
  // must be far below that.
  const std::uint64_t fullLeafBytes =
      lattice.numFluidSites() * sizeof(OctreeNode);
  for (std::size_t stage = 1; stage < stats.bytesPerStage.size(); ++stage) {
    EXPECT_LT(stats.bytesPerStage[stage], fullLeafBytes / 3)
        << "stage " << stage;
  }
}

// --- progressive level-delta streaming (relay tier wire format) -------------

namespace {

/// Synthetic render: a smooth gradient with a sharp disc, enough structure
/// that coarse levels genuinely differ from the original.
std::vector<std::uint8_t> testImage(int w, int h) {
  std::vector<std::uint8_t> rgb(static_cast<std::size_t>(w) * h * 3);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::size_t i = (static_cast<std::size_t>(y) * w + x) * 3;
      rgb[i + 0] = static_cast<std::uint8_t>((x * 255) / std::max(1, w - 1));
      rgb[i + 1] = static_cast<std::uint8_t>((y * 255) / std::max(1, h - 1));
      const int dx = x - w / 2, dy = y - h / 2;
      rgb[i + 2] = (dx * dx + dy * dy < (w / 4) * (w / 4)) ? 255 : 13;
    }
  }
  return rgb;
}

}  // namespace

TEST(Progressive, FinestLevelRoundTripIsBitExact) {
  // Non-power-of-two on purpose: the round-up halving chain must still
  // close exactly.
  const int w = 101, h = 67;
  const auto rgb = testImage(w, h);
  const auto pyramid = buildImagePyramid(w, h, rgb, 8);
  ASSERT_GE(pyramid.levels.size(), 3u);
  EXPECT_LE(std::max(pyramid.levels[0].width, pyramid.levels[0].height), 8);
  const auto full = reconstructImage(
      pyramid, static_cast<int>(pyramid.levels.size()) - 1);
  EXPECT_EQ(full, rgb);  // bit-exact against the direct full-res render
}

TEST(Progressive, EveryLevelRoundTripsWithBoundedError) {
  const int w = 64, h = 48;
  const auto rgb = testImage(w, h);
  const auto pyramid = buildImagePyramid(w, h, rgb, 8);
  double prevErr = 1e9;
  for (int l = 0; l < static_cast<int>(pyramid.levels.size()); ++l) {
    const auto recon = reconstructImage(pyramid, l);
    ASSERT_EQ(recon.size(), rgb.size());
    const double err = meanAbsError(recon, rgb);
    // Coarse levels: bounded error (box-filter mean of uint8 data can never
    // be off by a full dynamic range on average). Finer level: no worse.
    EXPECT_LT(err, 128.0) << "level " << l;
    EXPECT_LE(err, prevErr + 1e-9) << "refinement must not increase error";
    prevErr = err;
  }
  EXPECT_EQ(prevErr, 0.0);  // the finest level closes exactly
}

TEST(Progressive, SingleLevelFrameIsExactRoot) {
  // A frame already at root size decomposes into one exact level.
  const int w = 8, h = 6;
  const auto rgb = testImage(w, h);
  const auto pyramid = buildImagePyramid(w, h, rgb, 8);
  ASSERT_EQ(pyramid.levels.size(), 1u);
  EXPECT_EQ(reconstructImage(pyramid, 0), rgb);
}

TEST(Progressive, ReassemblyMatchesBatchReconstruction) {
  const int w = 40, h = 40;
  const auto rgb = testImage(w, h);
  const auto pyramid = buildImagePyramid(w, h, rgb, 8);
  ImageReassembly state;
  for (std::size_t l = 0; l < pyramid.levels.size(); ++l) {
    state.apply(pyramid.levels[l], l == 0);
    EXPECT_EQ(state.renderAt(w, h),
              reconstructImage(pyramid, static_cast<int>(l)));
  }
  EXPECT_EQ(state.rgb, rgb);
}

TEST(Progressive, TraversalIsCoarseBeforeFineAndRoiClipped) {
  SingleRankTree t;
  const auto [s, v] = t.fields();
  t.tree.update(s, v);
  const BoxI roi{{8, 8, 8}, {16, 16, 16}};
  const auto order = progressiveTraversal(t.tree, roi);
  ASSERT_FALSE(order.empty());
  // Coarse-before-fine invariant: levels non-decreasing along the stream,
  // keys ascending within a level, starting at the root.
  EXPECT_EQ(order.front().level, 0);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(order[i].level, order[i - 1].level);
    if (order[i].level == order[i - 1].level) {
      EXPECT_LT(order[i - 1].node.key, order[i].node.key);
    }
  }
  // ROI clipping: every emitted cell intersects the ROI, and the stream
  // matches query() level by level.
  for (const auto& e : order) {
    EXPECT_FALSE(
        t.tree.cellBox(e.level, e.node.key).intersect(roi).isEmpty());
  }
  for (int l = 0; l <= t.tree.leafLevel(); ++l) {
    const auto expected = t.tree.query(l, roi);
    std::size_t seen = 0;
    for (const auto& e : order) seen += (e.level == l) ? 1 : 0;
    EXPECT_EQ(seen, expected.size()) << "level " << l;
  }
  // Clipped stream is a strict subset of the whole-domain stream.
  const auto wholeDomain = progressiveTraversal(t.tree, BoxI::empty());
  EXPECT_LT(order.size(), wholeDomain.size());
  std::size_t total = 0;
  for (int l = 0; l <= t.tree.leafLevel(); ++l) total += t.tree.level(l).size();
  EXPECT_EQ(wholeDomain.size(), total);
}

TEST(Progressive, TraversalHonoursFinestLevelCap) {
  SingleRankTree t;
  const auto [s, v] = t.fields();
  t.tree.update(s, v);
  const auto capped = progressiveTraversal(t.tree, BoxI::empty(), 2);
  for (const auto& e : capped) EXPECT_LE(e.level, 2);
  std::size_t expected = 0;
  for (int l = 0; l <= 2; ++l) expected += t.tree.level(l).size();
  EXPECT_EQ(capped.size(), expected);
}

}  // namespace
}  // namespace hemo::multires
