// Live repartitioning tests: the cross-rank site migration data plane
// (distribution repacking onto a rebuilt DomainMap), the driver's
// telemetry-driven trigger policy (hysteresis, sentinel gate), and the
// invariants the tentpole promises — a migrated run is bit-equivalent to an
// unmigrated reference, checkpoints restore across a migration epoch, and
// the serving plane (octree context, broker subscriptions) survives the
// ownership handoff.
//
// Registered under the `resilience` ctest label and the TSan sweep
// (tests/run_tsan.sh): migration interleaves bulk alltoall traffic with
// solver/ghost/octree rebuilds across simulated rank threads.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <vector>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "lb/checkpoint.hpp"
#include "lb/migration.hpp"
#include "lb/solver.hpp"
#include "partition/partitioners.hpp"
#include "serve/broker.hpp"
#include "serve/client.hpp"

namespace hemo {
namespace {

geometry::SparseLattice tubeLattice(double length = 4.0) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  return geometry::voxelize(geometry::makeStraightTube(length, 1.0), opt);
}

core::DriverConfig plainDriverConfig() {
  core::DriverConfig dcfg;
  dcfg.lb.tau = 0.8;
  dcfg.lb.bodyForce = {1e-5, 0, 0};
  dcfg.computeWss = false;
  dcfg.visEvery = 0;
  dcfg.statusEvery = 0;
  return dcfg;
}

/// Synthetic measured cost: sites owned by rank 0 under `part` are
/// expensive, everything else cheap — exactly the shape a hot ROI produces.
std::vector<double> skewedCosts(const partition::Partition& part,
                                double hot = 4.0) {
  std::vector<double> cost(part.partOfSite.size(), 1.0);
  for (std::size_t g = 0; g < cost.size(); ++g) {
    if (part.partOfSite[g] == 0) cost[g] = hot;
  }
  return cost;
}

/// A solver's full state (all kQ distributions + macro fields) assembled
/// into global arrays for cross-run comparison. Pre-sized before rt.run();
/// every simulated rank fills only its owned (disjoint) entries.
struct GlobalState {
  std::vector<std::vector<double>> f;  // [q][globalSite]
  std::vector<double> rho;
  std::vector<Vec3d> u;

  explicit GlobalState(std::uint64_t numSites)
      : f(lb::SolverD3Q19::kQ, std::vector<double>(numSites, 0.0)),
        rho(numSites, 0.0),
        u(numSites) {}
};

void collectState(const lb::DomainMap& domain, lb::SolverD3Q19& solver,
                  GlobalState& out) {
  std::vector<double> col;
  for (int i = 0; i < lb::SolverD3Q19::kQ; ++i) {
    solver.gatherDistribution(i, col);
    for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
      out.f[static_cast<std::size_t>(i)][domain.globalOf(l)] = col[l];
    }
  }
  for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
    out.rho[domain.globalOf(l)] = solver.macro().rho[l];
    out.u[domain.globalOf(l)] = solver.macro().u[l];
  }
}

// --- data plane -------------------------------------------------------------

TEST(Migration, RepacksDistributionsOntoNewOwnership) {
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);
  // Flip ownership of every site: the worst case, everything migrates.
  partition::Partition flipped = part;
  for (auto& p : flipped.partOfSite) p = 1 - p;

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    lb::LbParams params;
    params.tau = 0.8;
    params.bodyForce = {1e-5, 0, 0};
    lb::SolverD3Q19 solver(domain, comm, params);
    solver.run(3);

    lb::DomainMap newDomain(lat, flipped, comm.rank());
    std::vector<std::vector<double>> columns;
    const auto stats =
        lb::migrateDistributions(solver, newDomain, comm, columns);
    EXPECT_EQ(stats.sitesMoved, lat.numFluidSites());
    EXPECT_EQ(stats.bytesMoved,
              lat.numFluidSites() *
                  (sizeof(std::uint64_t) +
                   lb::SolverD3Q19::kQ * sizeof(double)));

    // Each migrated column must hold, bit-exact, the values the old owner
    // had for the same global site.
    std::vector<double> oldCol;
    for (int i = 0; i < lb::SolverD3Q19::kQ; ++i) {
      solver.gatherDistribution(i, oldCol);
      // Old rank r owns site g iff new rank 1-r owns it; compare through
      // the exchanged columns of the peer by allgathering old columns.
      const auto oldAll = comm.allgatherVec(oldCol);
      for (std::uint32_t nl = 0; nl < newDomain.numOwned(); ++nl) {
        const auto g = newDomain.globalOf(nl);
        const int oldOwner = part.partOfSite[static_cast<std::size_t>(g)];
        lb::DomainMap oldView(lat, part, oldOwner);
        const auto ol = oldView.localOf(g);
        ASSERT_GE(ol, 0);
        EXPECT_EQ(columns[static_cast<std::size_t>(i)][nl],
                  oldAll[static_cast<std::size_t>(oldOwner)]
                        [static_cast<std::size_t>(ol)]);
      }
    }
  });
}

// --- tentpole equivalence ---------------------------------------------------

TEST(Migration, MigratedRunMatchesUnmigratedReference) {
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);
  const auto cfg = plainDriverConfig();

  // Reference: 20 uninterrupted steps on the original partition, plus one
  // pipeline run for the octree context view.
  GlobalState reference(lat.numFluidSites());
  std::vector<multires::OctreeNode> referenceNodes;
  {
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      core::SimulationDriver driver(domain, comm, cfg);
      driver.run(20);
      driver.runPipelineNow();
      collectState(domain, driver.solver(), reference);
      if (comm.rank() == 0) {
        referenceNodes = driver.lastOutputs().contextNodes;
      }
    });
  }

  // Migrated run: 10 steps, live migration under a skewed synthetic cost
  // field, 10 more steps. State and octree context must match the
  // reference to 1e-13 (the migration itself is bit-exact; the solver
  // arithmetic per site is partition-independent).
  GlobalState migrated(lat.numFluidSites());
  std::vector<multires::OctreeNode> migratedNodes;
  {
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      core::SimulationDriver driver(domain, comm, cfg);
      driver.run(10);
      const auto outcome = driver.migrateNow(skewedCosts(part));
      EXPECT_TRUE(outcome.migrated);
      EXPECT_GT(outcome.sitesMoved, 0u);
      EXPECT_GT(outcome.imbalanceBefore, 1.10);
      EXPECT_LT(outcome.imbalanceAfter, outcome.imbalanceBefore);
      EXPECT_EQ(driver.migrationEpoch(), 1u);
      EXPECT_EQ(driver.solver().stepsDone(), 10u);
      // The driver now runs on its own rebuilt domain.
      EXPECT_NE(&driver.domain(), &domain);
      driver.run(10);
      EXPECT_EQ(driver.solver().stepsDone(), 20u);
      driver.runPipelineNow();
      collectState(driver.domain(), driver.solver(), migrated);
      if (comm.rank() == 0) {
        migratedNodes = driver.lastOutputs().contextNodes;
      }
    });
  }

  for (int i = 0; i < lb::SolverD3Q19::kQ; ++i) {
    for (std::size_t g = 0; g < reference.f[0].size(); ++g) {
      ASSERT_NEAR(migrated.f[static_cast<std::size_t>(i)][g],
                  reference.f[static_cast<std::size_t>(i)][g], 1e-13)
          << "direction " << i << " site " << g;
    }
  }
  for (std::size_t g = 0; g < reference.rho.size(); ++g) {
    ASSERT_NEAR(migrated.rho[g], reference.rho[g], 1e-13);
    ASSERT_NEAR((migrated.u[g] - reference.u[g]).norm(), 0.0, 1e-13);
  }
  // Octree ownership handoff: the cross-rank merged context is exact, so
  // the rebuilt octree must reproduce the reference context node for node.
  ASSERT_EQ(migratedNodes.size(), referenceNodes.size());
  for (std::size_t i = 0; i < referenceNodes.size(); ++i) {
    EXPECT_EQ(migratedNodes[i].key, referenceNodes[i].key);
    EXPECT_EQ(migratedNodes[i].count, referenceNodes[i].count);
    EXPECT_NEAR(migratedNodes[i].meanScalar, referenceNodes[i].meanScalar,
                1e-6);
  }
}

TEST(Migration, CheckpointRestoresAcrossMigrationEpoch) {
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);
  const std::string dir = "/tmp/hemo_test_migration_ckpt";
  std::filesystem::remove_all(dir);

  auto cfg = plainDriverConfig();
  cfg.checkpointEvery = 5;
  cfg.checkpointDir = dir;
  cfg.checkpointKeep = 2;

  // Run A: checkpoint at 5 (pre-migration partition), migrate at 6,
  // checkpoint at 10 (post-migration partition), stop at 12.
  GlobalState stateA(lat.numFluidSites());
  {
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      core::SimulationDriver driver(domain, comm, cfg);
      driver.run(6);
      const auto outcome = driver.migrateNow(skewedCosts(part));
      EXPECT_TRUE(outcome.migrated);
      driver.run(6);
      collectState(driver.domain(), driver.solver(), stateA);
    });
  }

  // Run B: a fresh job on the *original* partition restores the newest
  // checkpoint — written at step 10 under the *migrated* partition — and
  // finishes. readCheckpoint routes sites by current ownership, so the
  // epoch boundary is invisible; final state must match run A to 1e-13.
  GlobalState stateB(lat.numFluidSites());
  {
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      core::SimulationDriver driver(domain, comm, cfg);
      const auto r = driver.restoreLatest();
      EXPECT_TRUE(r.ok()) << r.detail;
      EXPECT_EQ(r.step, 10u);
      driver.run(2);
      EXPECT_EQ(driver.solver().stepsDone(), 12u);
      collectState(driver.domain(), driver.solver(), stateB);
    });
  }
  for (int i = 0; i < lb::SolverD3Q19::kQ; ++i) {
    for (std::size_t g = 0; g < stateA.f[0].size(); ++g) {
      ASSERT_NEAR(stateB.f[static_cast<std::size_t>(i)][g],
                  stateA.f[static_cast<std::size_t>(i)][g], 1e-13);
    }
  }
  for (std::size_t g = 0; g < stateA.rho.size(); ++g) {
    ASSERT_NEAR(stateB.rho[g], stateA.rho[g], 1e-13);
    ASSERT_NEAR((stateB.u[g] - stateA.u[g]).norm(), 0.0, 1e-13);
  }
  std::filesystem::remove_all(dir);
}

// --- trigger policy ---------------------------------------------------------

/// A deliberately lopsided 2-part split: rank 0 gets roughly `fraction` of
/// the sites (a contiguous id prefix), rank 1 the rest.
partition::Partition lopsidedPartition(std::uint64_t numSites,
                                       double fraction) {
  partition::Partition p;
  p.numParts = 2;
  const auto cut = static_cast<std::uint64_t>(
      static_cast<double>(numSites) * fraction);
  p.partOfSite.resize(numSites);
  for (std::uint64_t g = 0; g < numSites; ++g) {
    p.partOfSite[static_cast<std::size_t>(g)] = g < cut ? 0 : 1;
  }
  return p;
}

TEST(MigrationPolicy, TelemetryTriggerRebalancesLopsidedRun) {
  const auto lat = tubeLattice();
  // Rank 1 owns ~90% of the sites: its busy time dominates each window, so
  // the measured imbalance sits near 1.8 — far over threshold.
  const auto part = lopsidedPartition(lat.numFluidSites(), 0.1);

  auto cfg = plainDriverConfig();
  cfg.repartition.repartitionEvery = 5;
  cfg.repartition.imbalanceThreshold = 1.25;
  cfg.repartition.triggerWindows = 2;
  cfg.repartition.cooldownWindows = 1;

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    core::SimulationDriver driver(domain, comm, cfg);
    EXPECT_EQ(driver.run(40), 40);
    EXPECT_GE(driver.migrationEpoch(), 1u);
    EXPECT_EQ(driver.solver().stepsDone(), 40u);
    // Ownership genuinely rebalanced: the site-count imbalance must have
    // dropped from ~1.8 toward parity.
    const auto owned = comm.allgather<std::uint64_t>(driver.domain().numOwned());
    const double hi = static_cast<double>(std::max(owned[0], owned[1]));
    const double total = static_cast<double>(owned[0] + owned[1]);
    EXPECT_LT(2.0 * hi / total, 1.4);
    // repart.* telemetry recorded on every rank.
    if (auto* t = telemetry::threadTelemetry()) {
      EXPECT_GE(t->metrics().counter("repart.migrations").value(), 1u);
      EXPECT_GE(t->metrics().counter("repart.sites_moved").value(), 1u);
    }
  });
}

TEST(MigrationPolicy, SentinelVetoesMigrationOfPoisonedState) {
  const auto lat = tubeLattice();
  const auto part = lopsidedPartition(lat.numFluidSites(), 0.1);

  auto cfg = plainDriverConfig();
  cfg.repartition.repartitionEvery = 5;
  cfg.repartition.imbalanceThreshold = 1.25;
  cfg.repartition.triggerWindows = 2;
  // Sentinel enabled but never due inside the run loop — only the
  // migration gate consults it. The density band excludes rho ~ 1, so
  // every check reports "poisoned": migration must never proceed.
  cfg.sentinel.checkEvery = 1 << 20;
  cfg.sentinel.minDensity = 2.0;
  cfg.sentinel.maxDensity = 3.0;

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    core::SimulationDriver driver(domain, comm, cfg);
    EXPECT_EQ(driver.run(30), 30);
    EXPECT_EQ(driver.migrationEpoch(), 0u);
    EXPECT_EQ(&driver.domain(), &domain);
    if (auto* t = telemetry::threadTelemetry()) {
      EXPECT_GE(t->metrics().counter("repart.vetoed").value(), 1u);
      EXPECT_EQ(t->metrics().counter("repart.migrations").value(), 0u);
    }
  });
}

// --- serving plane ----------------------------------------------------------

TEST(MigrationServing, BrokerSubscriptionsSurviveMigration) {
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);

  auto cfg = plainDriverConfig();
  cfg.statusEvery = 2;

  serve::SessionBroker broker;
  serve::ServeClient client(broker.connect());
  client.subscribe(serve::StreamKind::kStatus, 2);

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    core::SimulationDriver driver(domain, comm, cfg);
    driver.attachBroker(comm.rank() == 0 ? &broker : nullptr);
    driver.run(6);
    const auto outcome = driver.migrateNow(skewedCosts(part));
    EXPECT_TRUE(outcome.migrated);
    // The subscription machinery is domain-stateless: the same client
    // keeps receiving post-migration status frames without resubscribing.
    driver.run(6);
    EXPECT_TRUE(driver.brokerHealthy());
  });

  std::uint64_t lastStatusStep = 0;
  while (auto event = client.pollEvent()) {
    if (event->type == steer::MsgType::kStatus) {
      lastStatusStep = std::max(lastStatusStep, event->status.step);
    }
  }
  EXPECT_GE(lastStatusStep, 8u);
}

}  // namespace
}  // namespace hemo
