// Tests for the geometry substrate: direction set, SDF shapes, voxelizer,
// sparse lattice invariants, the .sgmy format round trip and the parallel
// reader.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <set>

#include "comm/runtime.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"
#include "geometry/parallel_reader.hpp"
#include "geometry/sgmy.hpp"
#include "geometry/shapes.hpp"
#include "geometry/sparse_lattice.hpp"
#include "geometry/voxelizer.hpp"

namespace hemo::geometry {
namespace {

TEST(Directions, CountAndUniqueness) {
  std::set<std::tuple<int, int, int>> seen;
  for (const auto& d : kDirections) {
    EXPECT_FALSE(d == (Vec3i{0, 0, 0}));
    seen.insert({d.x, d.y, d.z});
  }
  EXPECT_EQ(seen.size(), 26u);
}

TEST(Directions, OppositeIsNegation) {
  for (int i = 0; i < kNumDirections; ++i) {
    const int o = oppositeDirection(i);
    EXPECT_EQ(kDirections[static_cast<std::size_t>(o)],
              -kDirections[static_cast<std::size_t>(i)]);
    EXPECT_EQ(oppositeDirection(o), i);
  }
}

TEST(Directions, IndexLookup) {
  for (int i = 0; i < kNumDirections; ++i) {
    EXPECT_EQ(directionIndex(kDirections[static_cast<std::size_t>(i)]), i);
  }
  EXPECT_EQ(directionIndex(Vec3i{0, 0, 0}), -1);
  EXPECT_EQ(directionIndex(Vec3i{2, 0, 0}), -1);
}

TEST(Shapes, SphereSdf) {
  SphereShape s({1, 2, 3}, 2.0);
  EXPECT_DOUBLE_EQ(s.sdf({1, 2, 3}), -2.0);
  EXPECT_DOUBLE_EQ(s.sdf({3, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(s.sdf({5, 2, 3}), 2.0);
  EXPECT_TRUE(s.bounds().contains({2.9, 3.9, 4.9}));
}

TEST(Shapes, CapsuleSdf) {
  CapsuleShape c({0, 0, 0}, {10, 0, 0}, 1.0);
  EXPECT_DOUBLE_EQ(c.sdf({5, 0, 0}), -1.0);     // on axis
  EXPECT_DOUBLE_EQ(c.sdf({5, 1, 0}), 0.0);      // on surface
  EXPECT_DOUBLE_EQ(c.sdf({5, 3, 0}), 2.0);      // outside
  EXPECT_DOUBLE_EQ(c.sdf({-2, 0, 0}), 1.0);     // past hemispherical end
}

TEST(Shapes, ArcTubeMidpointInside) {
  // Quarter arc of bend radius 5, tube radius 1, in the xy-plane.
  ArcTubeShape arc({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 5.0, 1.5707963, 1.0);
  const Vec3d mid = arc.arcPoint(0.785398);
  EXPECT_LT(arc.sdf(mid), -0.99);
  EXPECT_GT(arc.sdf({0, 0, 0}), 0.0);  // bend centre is outside the tube
  // Tangent is unit and orthogonal to radius.
  const Vec3d t = arc.arcTangent(0.3);
  EXPECT_NEAR(t.norm(), 1.0, 1e-12);
}

TEST(Scene, FluidClippedByIolets) {
  Scene tube = makeStraightTube(10.0, 1.0);
  EXPECT_TRUE(tube.isFluid({5, 0, 0}));
  EXPECT_FALSE(tube.isFluid({5, 2, 0}));    // outside wall
  EXPECT_FALSE(tube.isFluid({-0.5, 0, 0})); // behind the inlet cap
  EXPECT_FALSE(tube.isFluid({10.5, 0, 0})); // past the outlet cap
  EXPECT_EQ(tube.iolets().size(), 2u);
}

TEST(Scene, GradientPointsOutward) {
  Scene tube = makeStraightTube(10.0, 1.0);
  const Vec3d g = tube.sdfGradient({5, 0.9, 0}, 0.01).normalized();
  EXPECT_NEAR(g.y, 1.0, 1e-3);
}

class LatticeTest : public ::testing::Test {
 protected:
  static SparseLattice makeTube(double voxel = 0.25) {
    VoxelizeOptions opt;
    opt.voxelSize = voxel;
    return voxelize(makeStraightTube(6.0, 1.0), opt);
  }
};

TEST_F(LatticeTest, VoxelizerProducesPlausibleTube) {
  const auto lat = makeTube();
  // Expected volume: pi r^2 L / h^3 = pi*1*6 / 0.015625 ≈ 1206 sites.
  const double expected = 3.14159265 * 6.0 / (0.25 * 0.25 * 0.25);
  EXPECT_GT(static_cast<double>(lat.numFluidSites()), expected * 0.8);
  EXPECT_LT(static_cast<double>(lat.numFluidSites()), expected * 1.2);
  EXPECT_EQ(lat.iolets().size(), 2u);
  EXPECT_LT(lat.fluidFraction(), 0.6);
}

TEST_F(LatticeTest, SiteIdsAreDenseAndInvertible) {
  const auto lat = makeTube();
  for (std::uint64_t id = 0; id < lat.numFluidSites(); ++id) {
    EXPECT_EQ(lat.siteId(lat.sitePosition(id)), static_cast<std::int64_t>(id));
  }
  EXPECT_EQ(lat.siteId({-1, 0, 0}), -1);
}

TEST_F(LatticeTest, BlockScanOrderIsMonotone) {
  const auto lat = makeTube();
  std::uint64_t expectFirst = 0;
  for (const auto& b : lat.blocks()) {
    EXPECT_EQ(b.firstSiteId, expectFirst);
    EXPECT_GT(b.fluidCount, 0u);
    expectFirst += b.fluidCount;
  }
  EXPECT_EQ(expectFirst, lat.numFluidSites());
}

TEST_F(LatticeTest, BlockOfSiteConsistent) {
  const auto lat = makeTube();
  for (std::uint64_t id = 0; id < lat.numFluidSites(); id += 97) {
    const auto bi = lat.blockOfSite(id);
    const auto& b = lat.blocks()[bi];
    EXPECT_GE(id, b.firstSiteId);
    EXPECT_LT(id, b.firstSiteId + b.fluidCount);
  }
}

TEST_F(LatticeTest, LinkClassificationMatchesNeighbours) {
  const auto lat = makeTube();
  std::uint64_t wallLinks = 0, ioletLinks = 0;
  for (std::uint64_t id = 0; id < lat.numFluidSites(); ++id) {
    const auto& rec = lat.site(id);
    for (int d = 0; d < kNumDirections; ++d) {
      const auto nid = lat.neighborId(id, d);
      const auto& link = rec.links[static_cast<std::size_t>(d)];
      if (nid >= 0) {
        // A fluid neighbour must be a bulk link.
        EXPECT_EQ(static_cast<int>(link.kind),
                  static_cast<int>(LinkKind::kBulk));
      } else {
        EXPECT_NE(static_cast<int>(link.kind),
                  static_cast<int>(LinkKind::kBulk));
        EXPECT_GT(link.wallDistance, 0.0f);
        EXPECT_LE(link.wallDistance, 1.0f);
        if (link.kind == LinkKind::kWall) {
          ++wallLinks;
        } else {
          ++ioletLinks;
          EXPECT_LT(link.ioletId, 2);
        }
      }
    }
  }
  EXPECT_GT(wallLinks, 0u);
  EXPECT_GT(ioletLinks, 0u);
}

TEST_F(LatticeTest, WallNormalsPointOutward) {
  const auto lat = makeTube();
  int checked = 0;
  for (std::uint64_t id = 0; id < lat.numFluidSites(); ++id) {
    const auto& rec = lat.site(id);
    if (!rec.hasWallNormal) continue;
    const Vec3d w = lat.siteWorld(id);
    // Tube axis is x; outward normal should have a positive radial dot.
    const Vec3d radial = Vec3d{0, w.y, w.z}.normalized();
    if (radial.norm2() > 0.5) {
      EXPECT_GT(radial.dot(rec.wallNormal.cast<double>()), 0.0);
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);
}

TEST_F(LatticeTest, AneurysmAddsVolumeOnOneSide) {
  VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  const auto plain = voxelize(makeStraightTube(6.0, 1.0), opt);
  const auto aneurysm = voxelize(makeAneurysmVessel(6.0, 1.0, 1.2), opt);
  EXPECT_GT(aneurysm.numFluidSites(), plain.numFluidSites() + 100);
}

TEST_F(LatticeTest, BifurcationHasThreeIolets) {
  VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  const auto lat =
      voxelize(makeBifurcation(4.0, 1.0, 4.0, 0.8, 0.5), opt);
  EXPECT_EQ(lat.iolets().size(), 3u);
  EXPECT_GT(lat.numFluidSites(), 500u);
}

TEST_F(LatticeTest, BentTubeConnectsLimbs) {
  VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  const auto lat = voxelize(makeBentTube(3.0, 4.0, 1.5707963, 1.0), opt);
  EXPECT_GT(lat.numFluidSites(), 500u);
  EXPECT_EQ(lat.iolets().size(), 2u);
}

TEST(Sgmy, RoundTripPreservesEverything) {
  VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  const auto lat = voxelize(makeAneurysmVessel(5.0, 1.0, 1.0), opt);
  const std::string path = "/tmp/hemo_test_roundtrip.sgmy";
  ASSERT_TRUE(writeSgmy(path, lat));
  const auto back = readSgmy(path);

  ASSERT_EQ(back.numFluidSites(), lat.numFluidSites());
  EXPECT_EQ(back.dims(), lat.dims());
  EXPECT_DOUBLE_EQ(back.voxelSize(), lat.voxelSize());
  EXPECT_EQ(back.iolets().size(), lat.iolets().size());
  EXPECT_EQ(back.numNonEmptyBlocks(), lat.numNonEmptyBlocks());
  for (std::uint64_t id = 0; id < lat.numFluidSites(); ++id) {
    ASSERT_EQ(back.sitePosition(id), lat.sitePosition(id));
    const auto& a = lat.site(id);
    const auto& b = back.site(id);
    EXPECT_EQ(b.hasWallNormal, a.hasWallNormal);
    for (int d = 0; d < kNumDirections; ++d) {
      const auto& la = a.links[static_cast<std::size_t>(d)];
      const auto& lb = b.links[static_cast<std::size_t>(d)];
      ASSERT_EQ(static_cast<int>(lb.kind), static_cast<int>(la.kind));
      ASSERT_FLOAT_EQ(lb.wallDistance, la.wallDistance);
      ASSERT_EQ(lb.ioletId, la.ioletId);
    }
  }
  std::remove(path.c_str());
}

TEST(Sgmy, HeaderOnlyReadIsCheap) {
  VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  const auto lat = voxelize(makeStraightTube(5.0, 1.0), opt);
  const std::string path = "/tmp/hemo_test_header.sgmy";
  ASSERT_TRUE(writeSgmy(path, lat));
  const auto h = readSgmyHeader(path);
  EXPECT_EQ(h.dims, lat.dims());
  EXPECT_EQ(h.totalFluidSites(), lat.numFluidSites());
  EXPECT_EQ(h.blockTable.size(), lat.numNonEmptyBlocks());
  std::remove(path.c_str());
}

TEST(BlockAssignment, CoversAllAndIsBalanced) {
  VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  const auto lat = voxelize(makeStraightTube(8.0, 1.0), opt);
  const std::string path = "/tmp/hemo_test_assign.sgmy";
  ASSERT_TRUE(writeSgmy(path, lat));
  const auto h = readSgmyHeader(path);
  for (int parts : {1, 2, 3, 4, 8}) {
    const auto owner = assignBlocksByFluidVolume(h, parts);
    ASSERT_EQ(owner.size(), h.blockTable.size());
    std::vector<double> load(static_cast<std::size_t>(parts), 0.0);
    for (std::size_t i = 0; i < owner.size(); ++i) {
      ASSERT_GE(owner[i], 0);
      ASSERT_LT(owner[i], parts);
      // Contiguity: owners are non-decreasing along the scan.
      if (i > 0) {
        ASSERT_GE(owner[i], owner[i - 1]);
      }
      load[static_cast<std::size_t>(owner[i])] +=
          h.blockTable[i].fluidCount;
    }
    for (double l : load) EXPECT_GT(l, 0.0);
    // Block granularity bounds the imbalance loosely.
    EXPECT_LT(hemo::imbalanceFactor(load), 2.0);
  }
  std::remove(path.c_str());
}

// --- malformed-input hardening ---------------------------------------------

namespace malformed {

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Writes a small valid .sgmy and returns its bytes for corruption.
std::vector<char> validFixture(const std::string& path) {
  VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  const auto lat = voxelize(makeStraightTube(4.0, 1.0), opt);
  EXPECT_TRUE(writeSgmy(path, lat));
  return slurp(path);
}

/// File offset of the block-table count (magic 4 + version 4 + dims 12 +
/// blockSize 4 + voxelSize 8 + origin 24 + ioletCount 4 + 74 per iolet).
std::size_t blockCountOffset(const std::string& path) {
  SgmyHeader h;
  EXPECT_EQ(static_cast<int>(tryReadSgmyHeader(path, &h)),
            static_cast<int>(GeoStatus::kOk));
  return 60 + 74 * h.iolets.size();
}

}  // namespace malformed

TEST(SgmyHardening, MissingFileIsOpenFailed) {
  SgmyHeader h;
  std::string detail;
  EXPECT_EQ(static_cast<int>(tryReadSgmyHeader(
                "/tmp/hemo_no_such_file_ever.sgmy", &h, &detail)),
            static_cast<int>(GeoStatus::kOpenFailed));
  EXPECT_FALSE(detail.empty());
}

TEST(SgmyHardening, CorruptMagicIsBadMagic) {
  const std::string path = "/tmp/hemo_test_badmagic.sgmy";
  auto bytes = malformed::validFixture(path);
  bytes[0] = 'X';
  malformed::spit(path, bytes);
  SgmyHeader h;
  EXPECT_EQ(static_cast<int>(tryReadSgmyHeader(path, &h)),
            static_cast<int>(GeoStatus::kBadMagic));
  std::remove(path.c_str());
}

TEST(SgmyHardening, UnknownVersionIsBadVersion) {
  const std::string path = "/tmp/hemo_test_badversion.sgmy";
  auto bytes = malformed::validFixture(path);
  const std::uint32_t v = 999;
  std::memcpy(bytes.data() + 4, &v, sizeof(v));
  malformed::spit(path, bytes);
  SgmyHeader h;
  EXPECT_EQ(static_cast<int>(tryReadSgmyHeader(path, &h)),
            static_cast<int>(GeoStatus::kBadVersion));
  std::remove(path.c_str());
}

TEST(SgmyHardening, TruncationAnywhereInTheHeaderIsTyped) {
  const std::string path = "/tmp/hemo_test_trunc.sgmy";
  const auto bytes = malformed::validFixture(path);
  const auto tableEnd = malformed::blockCountOffset(path) + 8;
  // Every prefix that ends inside the fixed header or the tables must map
  // to a typed status, never an abort or a bogus kOk.
  for (std::size_t n : {std::size_t{0}, std::size_t{3}, std::size_t{7},
                        std::size_t{30}, std::size_t{59}, tableEnd - 1,
                        tableEnd + 5}) {
    malformed::spit(path,
                    std::vector<char>(bytes.begin(), bytes.begin() + n));
    SgmyHeader h;
    const auto status = tryReadSgmyHeader(path, &h);
    EXPECT_NE(static_cast<int>(status), static_cast<int>(GeoStatus::kOk))
        << "prefix " << n;
  }
  std::remove(path.c_str());
}

TEST(SgmyHardening, HugeBlockCountIsTruncatedNotAllocated) {
  const std::string path = "/tmp/hemo_test_hugecount.sgmy";
  auto bytes = malformed::validFixture(path);
  const auto off = malformed::blockCountOffset(path);
  // A count whose table could never fit in the file must be refused
  // *before* any reserve — an OOM here would be a remote-triggered crash.
  const std::uint64_t huge = std::numeric_limits<std::uint64_t>::max() / 4;
  std::memcpy(bytes.data() + off, &huge, sizeof(huge));
  malformed::spit(path, bytes);
  SgmyHeader h;
  EXPECT_EQ(static_cast<int>(tryReadSgmyHeader(path, &h)),
            static_cast<int>(GeoStatus::kTruncated));
  std::remove(path.c_str());
}

TEST(SgmyHardening, PayloadBytesBeyondFileIsInconsistent) {
  const std::string path = "/tmp/hemo_test_badpayload.sgmy";
  auto bytes = malformed::validFixture(path);
  // First table entry: blockLinear u64, fluidCount u32, then payloadOffset
  // u64 and payloadBytes u64 — point the size past the end of the file.
  const auto entry = malformed::blockCountOffset(path) + 8;
  const std::uint64_t bogus = 1u << 30;
  std::memcpy(bytes.data() + entry + 8 + 4 + 8, &bogus, sizeof(bogus));
  malformed::spit(path, bytes);
  SgmyHeader h;
  std::string detail;
  EXPECT_EQ(static_cast<int>(tryReadSgmyHeader(path, &h, &detail)),
            static_cast<int>(GeoStatus::kInconsistent));
  std::remove(path.c_str());
}

TEST(SgmyHardening, ThrowingReaderReportsTheTypedStatus) {
  const std::string path = "/tmp/hemo_test_throwmsg.sgmy";
  auto bytes = malformed::validFixture(path);
  bytes[0] = '?';
  malformed::spit(path, bytes);
  try {
    (void)readSgmyHeader(path);
    FAIL() << "expected CheckError";
  } catch (const hemo::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("bad-magic"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(SgmyHardening, DistributedReadFailsIdenticallyOnEveryRank) {
  const std::string path = "/tmp/hemo_test_distfail.sgmy";
  auto bytes = malformed::validFixture(path);
  bytes.resize(40);  // ends inside the fixed header
  malformed::spit(path, bytes);

  constexpr int kRanks = 3;
  std::vector<GeoStatus> status(kRanks, GeoStatus::kOk);
  std::vector<std::string> detail(kRanks);
  comm::Runtime rt(kRanks);
  rt.run([&](comm::Communicator& comm) {
    // Only rank 0 touches the file; the typed status must still arrive on
    // every rank (no rank left stranded in a collective by a rank-0 throw).
    const auto res = tryReadSgmyDistributed(comm, path, 2);
    status[static_cast<std::size_t>(comm.rank())] = res.status;
    detail[static_cast<std::size_t>(comm.rank())] = res.statusDetail;
    EXPECT_FALSE(res.ok());
    EXPECT_TRUE(res.ownedSites.empty());
  });
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(static_cast<int>(status[static_cast<std::size_t>(r)]),
              static_cast<int>(GeoStatus::kTruncated))
        << "rank " << r;
    EXPECT_EQ(detail[static_cast<std::size_t>(r)], detail[0]);
  }
  std::remove(path.c_str());
}

class ParallelReadTest : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(ParallelReadTest, AllSitesArriveExactlyOnce) {
  const auto [ranks, readers] = GetParam();
  VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  const auto lat = voxelize(makeAneurysmVessel(5.0, 1.0, 1.0), opt);
  // Unique per parametrization: ctest runs these cases concurrently.
  const std::string path = "/tmp/hemo_test_parread_" + std::to_string(ranks) +
                           "_" + std::to_string(readers) + ".sgmy";
  ASSERT_TRUE(writeSgmy(path, lat));

  comm::Runtime rt(ranks);
  std::vector<std::vector<Vec3i>> perRank(static_cast<std::size_t>(ranks));
  rt.run([&](comm::Communicator& comm) {
    const auto res = readSgmyDistributed(comm, path, readers);
    EXPECT_EQ(res.header.totalFluidSites(), lat.numFluidSites());
    bool expectReader = false;
    for (int g = 0; g < readers; ++g) {
      if (comm.rank() == g * ranks / readers) expectReader = true;
    }
    EXPECT_EQ(res.wasReader, expectReader);
    auto& mine = perRank[static_cast<std::size_t>(comm.rank())];
    for (const auto& s : res.ownedSites) mine.push_back(s.position);
  });

  // Union over ranks = the full site set, no duplicates.
  std::set<std::tuple<int, int, int>> seen;
  std::size_t total = 0;
  for (const auto& v : perRank) {
    total += v.size();
    for (const auto& p : v) seen.insert({p.x, p.y, p.z});
  }
  EXPECT_EQ(total, lat.numFluidSites());
  EXPECT_EQ(seen.size(), lat.numFluidSites());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndReaders, ParallelReadTest,
    ::testing::Values(std::pair{1, 1}, std::pair{4, 1}, std::pair{4, 2},
                      std::pair{4, 4}, std::pair{8, 2}, std::pair{8, 8}));

TEST(ParallelRead, FewerReadersShiftBytesToComm) {
  VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  const auto lat = voxelize(makeStraightTube(8.0, 1.0), opt);
  const std::string path = "/tmp/hemo_test_tradeoff.sgmy";
  ASSERT_TRUE(writeSgmy(path, lat));

  auto commBytes = [&](int readers) {
    comm::Runtime rt(8);
    rt.run([&](comm::Communicator& comm) {
      readSgmyDistributed(comm, path, readers);
    });
    return rt.totalCounters().of(comm::Traffic::kIo).bytesSent;
  };
  // With every rank reading its own blocks most payloads stay local; with
  // one reader almost everything crosses the network.
  EXPECT_GT(commBytes(1), commBytes(8));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hemo::geometry
