// Telemetry subsystem tests: histogram quantiles against an exact oracle,
// trace-ring semantics (overflow, concurrent drain), Chrome-trace export
// well-formedness (valid JSON, balanced B/E per tid), per-step report
// aggregation across ranks, and the instrumentation-overhead guard for the
// LB hot loop.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "core/perf_model.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "lb/solver.hpp"
#include "partition/partitioners.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/step_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/timer.hpp"

namespace hemo::telemetry {
namespace {

// --- minimal JSON parser (validation + DOM) --------------------------------------
// Strict enough to catch the export bugs that matter: unbalanced braces,
// missing commas, unescaped strings, bare NaN/inf.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skipWs();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error(std::string("JSON error at ") +
                             std::to_string(pos_) + ": " + what);
  }

  void skipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  JsonValue value() {
    skipWs();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = string();
        return v;
      }
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return {};
      default:
        return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      std::string key = string();
      skipWs();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (std::isxdigit(static_cast<unsigned char>(s_[pos_ + static_cast<std::size_t>(i)])) == 0) {
              fail("bad \\u escape");
            }
          }
          pos_ += 4;
          out.push_back('?');  // code point itself is irrelevant here
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
    }
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("bad number");
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad fraction");
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("bad exponent");
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  void literal(const char* lit) {
    for (; *lit != '\0'; ++lit) {
      if (pos_ >= s_.size() || s_[pos_] != *lit) fail("bad literal");
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

geometry::SparseLattice tube(double voxel, double length = 4.0) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = voxel;
  return geometry::voxelize(geometry::makeStraightTube(length, 1.0), opt);
}

partition::Partition kway(const geometry::SparseLattice& lattice, int parts) {
  const auto graph = partition::buildSiteGraph(lattice);
  partition::MultilevelKWayPartitioner k;
  return k.partition(graph, parts);
}

lb::LbParams flowParams() {
  lb::LbParams p;
  p.tau = 0.8;
  p.bodyForce = {1e-5, 0, 0};
  return p;
}

// --- histogram -------------------------------------------------------------------

TEST(LogHistogram, QuantilesMatchSortedOracle) {
  // Deterministic LCG over four decades of magnitude.
  std::uint64_t state = 12345;
  auto next = [&] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) /
           static_cast<double>(1ULL << 53);
  };
  LogHistogram h;
  std::vector<double> oracle;
  for (int i = 0; i < 20000; ++i) {
    const double v = 1e-6 * std::pow(10.0, 4.0 * next());
    h.add(v);
    oracle.push_back(v);
  }
  std::sort(oracle.begin(), oracle.end());
  const double bound = h.relativeErrorBound();
  EXPECT_NEAR(bound, 0.0219, 0.001);  // sub = 16 buckets per octave
  for (const double q : {0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    const auto idx = static_cast<std::size_t>(std::min<double>(
        std::ceil(q * static_cast<double>(oracle.size())) - 1.0,
        static_cast<double>(oracle.size() - 1)));
    const double exact = oracle[std::max<std::size_t>(idx, 0)];
    const double est = h.quantile(q);
    EXPECT_NEAR(est, exact, exact * (bound + 1e-9)) << "q=" << q;
  }
}

TEST(LogHistogram, ExactStatsAndBoundsAndReset) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.add(2.0);
  h.add(8.0);
  h.add(4.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 14.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  EXPECT_NEAR(h.mean(), 14.0 / 3.0, 1e-12);
  // Quantiles are clamped to the observed range whatever the bucket centre.
  EXPECT_GE(h.quantile(0.0), 2.0);
  EXPECT_LE(h.quantile(1.0), 8.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  h.add(1.0);
  EXPECT_EQ(h.count(), 1u);
}

// --- metrics registry ------------------------------------------------------------

TEST(MetricsRegistry, StableReferencesAndJson) {
  MetricsRegistry reg;
  Counter& steps = reg.counter("lb.steps");
  Gauge& mlups = reg.gauge("lb.mlups");
  LogHistogram& rtt = reg.histogram("steer.rtt_seconds");
  for (int i = 0; i < 100; ++i) reg.counter(std::to_string(i));  // churn
  steps.add(7);
  mlups.set(12.5);
  rtt.add(1e-3);
  EXPECT_EQ(reg.counter("lb.steps").value(), 7u);  // same node
  EXPECT_DOUBLE_EQ(reg.gauge("lb.mlups").value(), 12.5);

  const std::string json = reg.toJson();
  JsonValue doc;
  ASSERT_NO_THROW(doc = JsonParser(json).parse()) << json;
  const auto* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const auto* lbSteps = counters->find("lb.steps");
  ASSERT_NE(lbSteps, nullptr);
  EXPECT_DOUBLE_EQ(lbSteps->number, 7.0);
  const auto* hist = doc.find("histograms");
  ASSERT_NE(hist, nullptr);
  const auto* h = hist->find("steer.rtt_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("count")->number, 1.0);

  reg.reset();
  EXPECT_EQ(steps.value(), 0u);  // cached reference still valid
  EXPECT_DOUBLE_EQ(mlups.value(), 0.0);
  EXPECT_EQ(rtt.count(), 0u);
}

// --- trace ring ------------------------------------------------------------------

TEST(TraceRing, OverflowDropsNewestAndCounts) {
  TraceRing ring(4);  // already a power of two
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 6; ++i) {
    ring.push({i, "e", Category::kOther, SpanPhase::kBegin});
  }
  EXPECT_EQ(ring.dropped(), 2u);
  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.drain(out), 4u);
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)].tsNs, i);
  // Drained slots are reusable.
  EXPECT_TRUE(ring.push({9, "e", Category::kOther, SpanPhase::kEnd}));
  out.clear();
  EXPECT_EQ(ring.drain(out), 1u);
  EXPECT_EQ(out[0].tsNs, 9);
}

TEST(TraceRing, ConcurrentProducerAndDrainer) {
  // One producer thread, one drainer thread, small ring: exercises the SPSC
  // protocol under contention (the TSan suite runs this binary too).
  TraceRing ring(64);
  constexpr std::uint64_t kPushes = 200000;
  std::vector<TraceEvent> drained;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kPushes; ++i) {
      ring.push({static_cast<std::int64_t>(i), "p", Category::kCollide,
                 SpanPhase::kBegin});
    }
  });
  std::thread drainer([&] {
    while (drained.size() + ring.dropped() < kPushes) {
      ring.drain(drained);
    }
  });
  producer.join();
  drainer.join();
  ring.drain(drained);
  EXPECT_EQ(drained.size() + ring.dropped(), kPushes);
  // Delivered events arrive in push order.
  std::int64_t prev = -1;
  for (const auto& e : drained) {
    EXPECT_GT(e.tsNs, prev);
    prev = e.tsNs;
  }
}

// --- thread attachment + spans ---------------------------------------------------

TEST(Telemetry, SpansAreInertWithoutAttachmentAndRecordWithIt) {
  EXPECT_EQ(threadTelemetry(), nullptr);
  { HEMO_TSPAN(kVis, "unattached"); }  // must be a safe no-op

  RankTelemetry t(3);
  std::vector<TraceEvent> events;
  {
    ThreadTelemetryScope scope(&t);
    ASSERT_EQ(threadTelemetry(), &t);
    { HEMO_TSPAN(kCollide, "attached"); }
    t.tracer().setEnabled(false);
    { HEMO_TSPAN(kCollide, "disabled"); }
    t.tracer().setEnabled(true);
  }
  EXPECT_EQ(threadTelemetry(), nullptr);
  t.tracer().drain(events);
#ifndef HEMO_TELEMETRY_DISABLED
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "attached");
  EXPECT_EQ(static_cast<int>(events[0].phase),
            static_cast<int>(SpanPhase::kBegin));
  EXPECT_EQ(static_cast<int>(events[1].phase),
            static_cast<int>(SpanPhase::kEnd));
  EXPECT_GE(events[1].tsNs, events[0].tsNs);
#else
  EXPECT_TRUE(events.empty());
#endif
}

// --- chrome trace export ---------------------------------------------------------

/// Walk traceEvents checking the nesting discipline chrome://tracing
/// requires: per tid, "E" never without an open "B" and no "B" left open.
void expectBalanced(const JsonValue& doc) {
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(static_cast<int>(events->type),
            static_cast<int>(JsonValue::Type::kArray));
  std::map<int, int> depth;
  for (const auto& e : events->array) {
    const auto* ph = e.find("ph");
    const auto* tid = e.find("tid");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(tid, nullptr);
    const int t = static_cast<int>(tid->number);
    if (ph->string == "B") {
      ++depth[t];
    } else if (ph->string == "E") {
      --depth[t];
      EXPECT_GE(depth[t], 0) << "orphan E on tid " << t;
    }
  }
  for (const auto& [t, d] : depth) EXPECT_EQ(d, 0) << "unclosed B on tid " << t;
}

TEST(ChromeTrace, ExportIsValidJsonAndBalanced) {
  RankTrace r0;
  r0.rank = 0;
  r0.events = {
      {100, "step", Category::kStep, SpanPhase::kBegin},
      {110, "collide \"q\"\n", Category::kCollide, SpanPhase::kBegin},
      {150, "collide \"q\"\n", Category::kCollide, SpanPhase::kEnd},
      {190, "step", Category::kStep, SpanPhase::kEnd},
  };
  RankTrace r1;
  r1.rank = 1;
  r1.events = {
      // Orphan end (its begin was lost to ring overflow) + unclosed begin:
      // the exporter must repair both.
      {90, "lost", Category::kHaloSend, SpanPhase::kEnd},
      {120, "halo.send", Category::kHaloSend, SpanPhase::kBegin},
      {130, "vis.volume", Category::kVis, SpanPhase::kBegin},
  };
  r1.dropped = 3;

  const std::string json = chromeTraceJson({r0, r1});
  JsonValue doc;
  ASSERT_NO_THROW(doc = JsonParser(json).parse()) << json;
  expectBalanced(doc);

  // Per-rank thread_name metadata and both tids present.
  const auto* events = doc.find("traceEvents");
  int metadata = 0;
  std::set<int> tids;
  for (const auto& e : events->array) {
    if (e.find("ph")->string == "M") ++metadata;
    tids.insert(static_cast<int>(e.find("tid")->number));
  }
  EXPECT_EQ(metadata, 2);
  EXPECT_EQ(tids, (std::set<int>{0, 1}));
}

TEST(ChromeTrace, SolverRunProducesPerRankSpans) {
  const auto lattice = tube(0.18);
  const auto part = kway(lattice, 4);
  comm::Runtime rt(4);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, part, comm.rank());
    lb::SolverD3Q19 solver(domain, comm, flowParams());
    solver.run(5);
  });

  const auto traces = rt.drainTraces();
  ASSERT_EQ(traces.size(), 4u);
#ifndef HEMO_TELEMETRY_DISABLED
  for (const auto& t : traces) {
    bool collide = false, halo = false;
    for (const auto& e : t.events) {
      collide = collide || e.category == Category::kCollide;
      halo = halo || e.category == Category::kHaloSend;
    }
    EXPECT_TRUE(collide) << "rank " << t.rank;
    EXPECT_TRUE(halo) << "rank " << t.rank;
  }

  const std::string json = chromeTraceJson(traces);
  JsonValue doc;
  ASSERT_NO_THROW(doc = JsonParser(json).parse());
  expectBalanced(doc);
  std::set<int> tids;
  for (const auto& e : doc.find("traceEvents")->array) {
    tids.insert(static_cast<int>(e.find("tid")->number));
  }
  EXPECT_EQ(tids, (std::set<int>{0, 1, 2, 3}));

  // File export round-trips through the same renderer.
  const std::string path = ::testing::TempDir() + "hemo_trace_test.json";
  EXPECT_TRUE(writeChromeTrace(path, traces));
  std::remove(path.c_str());
#endif
}

// --- step report -----------------------------------------------------------------

TEST(StepReport, AggregationMath) {
  std::vector<StepReport> perRank(4);
  for (std::size_t r = 0; r < perRank.size(); ++r) {
    auto& rep = perRank[r];
    rep.step = 100;
    rep.sites = 1000;
    rep.stepsCovered = 50;
    rep.wallSeconds = 1.0 + 0.1 * static_cast<double>(r);
    rep.collideSeconds = 0.5;
    rep.streamSeconds = r == 3 ? 0.9 : 0.5;  // rank 3 is the straggler
    rep.commHiddenFraction = 0.5;
    rep.bytesSent[1] = 100;  // halo
    rep.msgsSent[1] = 10;
  }
  const auto agg = aggregateStepReports(perRank);
  EXPECT_EQ(agg.ranks, 4u);
  EXPECT_EQ(agg.sites, 4000u);
  EXPECT_EQ(agg.stepsCovered, 50u);
  EXPECT_DOUBLE_EQ(agg.wallSeconds, 1.3);
  EXPECT_EQ(agg.bytesSent[1], 400u);
  EXPECT_EQ(agg.msgsSent[1], 40u);
  // Imbalance: busy max 1.4, busy mean (3*1.0 + 1.4)/4 = 1.1.
  EXPECT_NEAR(agg.loadImbalance, 1.4 / 1.1, 1e-12);
  EXPECT_DOUBLE_EQ(agg.commHiddenFraction, 0.5);
  EXPECT_NEAR(agg.mlups, 4000.0 * 50.0 / 1.3 / 1e6, 1e-12);
  EXPECT_EQ(aggregateStepReports({}).ranks, 1u);  // empty → default report
}

TEST(StepReport, AllgatherAggregationIsIdenticalEverywhere) {
  comm::Runtime rt(4);
  rt.run([&](comm::Communicator& comm) {
    StepReport local;
    local.step = 10;
    local.sites = 100 + static_cast<std::uint64_t>(comm.rank());
    local.stepsCovered = 10;
    local.collideSeconds = 1.0;
    local.streamSeconds = 0.5;
    local.wallSeconds = 2.0;
    local.bytesSent[1] = static_cast<std::uint64_t>(comm.rank()) * 10;
    const auto agg = aggregateStepReports(comm.allgather(local));
    EXPECT_EQ(agg.ranks, 4u);
    EXPECT_EQ(agg.sites, 406u);
    EXPECT_EQ(agg.bytesSent[1], 60u);
    EXPECT_NEAR(agg.loadImbalance, 1.0, 1e-12);
  });
}

TEST(StepReport, DriverWindowsFeedThePerfModel) {
  const auto lattice = tube(0.2);
  const auto part = kway(lattice, 2);
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, part, comm.rank());
    core::DriverConfig dcfg;
    dcfg.lb = flowParams();
    dcfg.computeWss = false;  // keep the driver lean: no stress tensors
    dcfg.visEvery = 0;
    dcfg.statusEvery = 0;
    dcfg.render.width = 16;
    dcfg.render.height = 16;
    core::SimulationDriver driver(domain, comm, dcfg);
    driver.run(20);
    const auto report = driver.computeStepReport();
    EXPECT_EQ(report.ranks, 2u);
    EXPECT_EQ(report.sites, lattice.numFluidSites());
    EXPECT_EQ(report.stepsCovered, 20u);
    EXPECT_GT(report.wallSeconds, 0.0);
    EXPECT_GT(report.mlups, 0.0);
    EXPECT_GE(report.loadImbalance, 1.0);
    // Halo traffic of the window landed in the report.
    EXPECT_GT(report.bytesSent[static_cast<int>(comm::Traffic::kHalo)], 0u);
    EXPECT_EQ(driver.lastStepReport().stepsCovered, 20u);
    // The report feeds the postal model directly.
    const auto cost = core::rankCostFromReport(report);
    EXPECT_GT(cost.busySeconds, 0.0);
    EXPECT_GT(cost.bytes, 0u);

    // A second window starts empty: its stepsCovered counts only new steps.
    driver.run(5);
    const auto second = driver.computeStepReport();
    EXPECT_EQ(second.stepsCovered, 5u);
  });
}

// --- timer misuse guard ----------------------------------------------------------

TEST(PhaseTimerGuard, MisuseThrowsAndRunningReports) {
  PhaseTimer t;
  EXPECT_FALSE(t.running());
  EXPECT_THROW(t.stop(), CheckError);
  t.start();
  EXPECT_TRUE(t.running());
  EXPECT_THROW(t.start(), CheckError);
  t.stop();
  EXPECT_FALSE(t.running());
  EXPECT_GE(t.total(), 0.0);
  t.start();
  t.reset();  // reset clears the running flag
  EXPECT_FALSE(t.running());

  WallPhaseTimer w;
  EXPECT_THROW(w.stop(), CheckError);
  w.start();
  EXPECT_THROW(w.start(), CheckError);
  w.stop();
  EXPECT_FALSE(w.running());
}

// --- overhead guard --------------------------------------------------------------

#ifndef HEMO_TELEMETRY_DISABLED
double fusedMlups(const geometry::SparseLattice& lattice,
                  const partition::Partition& part, bool traceOn, int steps) {
  double busy = 0.0;
  comm::Runtime rt(1);
  rt.telemetry(0).tracer().setEnabled(traceOn);
  // The wait-state recorder hooks the same hot recv path as the tracer;
  // the overhead budget must cover both or it measures the wrong thing.
  rt.telemetry(0).waitState().setEnabled(traceOn);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, part, 0);
    lb::SolverD3Q19 solver(domain, comm, flowParams());
    solver.run(3);  // warm up
    const double t0 = threadCpuSeconds();
    solver.run(steps);
    busy = threadCpuSeconds() - t0;
  });
  return busy > 0.0 ? static_cast<double>(lattice.numFluidSites()) *
                          static_cast<double>(steps) / busy / 1e6
                    : 0.0;
}

double medianOf3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

TEST(Telemetry, HotLoopOverheadStaysWithinBudget) {
  // The ISSUE budget: instrumented MLUPS within 2% of the uninstrumented
  // build. The in-binary proxy compares instrumented (tracer + wait-state
  // recorder) against disabled runs (the compiled-out baseline plus one
  // relaxed load per hook). Max-of-N is biased by a single lucky
  // uninstrumented trial, so each attempt compares interleaved
  // median-of-3 throughputs; retries ride out scheduler noise on shared
  // machines.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "timing budget not meaningful under sanitizer slowdown";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  GTEST_SKIP() << "timing budget not meaningful under sanitizer slowdown";
#endif
#endif
  const auto lattice = tube(0.12, 4.0);
  const auto part = kway(lattice, 1);
  const int steps = 30;
  constexpr double kRelativeBudget = 0.02;  // instrumented within 2% of off
  double bestRatio = 0.0;
  for (int attempt = 0; attempt < 4; ++attempt) {
    double on[3] = {}, off[3] = {};
    for (int trial = 0; trial < 3; ++trial) {
      off[trial] = fusedMlups(lattice, part, false, steps);
      on[trial] = fusedMlups(lattice, part, true, steps);
    }
    const double offMedian = medianOf3(off[0], off[1], off[2]);
    const double onMedian = medianOf3(on[0], on[1], on[2]);
    ASSERT_GT(offMedian, 0.0);
    bestRatio = std::max(bestRatio, onMedian / offMedian);
    if (bestRatio >= 1.0 - kRelativeBudget) break;
  }
  EXPECT_GE(bestRatio, 1.0 - kRelativeBudget)
      << "instrumentation overhead above the 2% MLUPS budget";
}
#endif

}  // namespace
}  // namespace hemo::telemetry
