// Unit tests for the util module: vectors, boxes, Morton codes, RNG,
// statistics and invariant checking.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/bbox.hpp"
#include "util/check.hpp"
#include "util/morton.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "util/vec.hpp"

namespace hemo {
namespace {

TEST(Vec3, BasicArithmetic) {
  Vec3d a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3d{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3d{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3d{2, 4, 6}));
  EXPECT_EQ(2.0 * a, (Vec3d{2, 4, 6}));
  EXPECT_EQ(-a, (Vec3d{-1, -2, -3}));
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
}

TEST(Vec3, CrossIsOrthogonal) {
  Vec3d a{1, 2, 3}, b{-2, 0.5, 4};
  const Vec3d c = a.cross(b);
  EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

TEST(Vec3, NormAndNormalize) {
  Vec3d v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-14);
  EXPECT_EQ(Vec3d{}.normalized(), Vec3d{});
}

TEST(Vec3, IndexingMatchesComponents) {
  Vec3i v{7, 8, 9};
  EXPECT_EQ(v[0], 7);
  EXPECT_EQ(v[1], 8);
  EXPECT_EQ(v[2], 9);
  v[1] = 42;
  EXPECT_EQ(v.y, 42);
}

TEST(Vec3, CastAndLerp) {
  Vec3d v{1.9, -2.1, 3.0};
  const Vec3i i = v.cast<int>();
  EXPECT_EQ(i, (Vec3i{1, -2, 3}));
  const Vec3d mid = lerp(Vec3d{0, 0, 0}, Vec3d{2, 4, 8}, 0.5);
  EXPECT_EQ(mid, (Vec3d{1, 2, 4}));
}

TEST(SymTensor3, ApplyAndFrobenius) {
  SymTensor3 t;
  t.xx() = 1; t.yy() = 2; t.zz() = 3;
  t.xy() = 0.5; t.xz() = -0.5; t.yz() = 0.25;
  const Vec3d r = t.apply({1, 1, 1});
  EXPECT_DOUBLE_EQ(r.x, 1 + 0.5 - 0.5);
  EXPECT_DOUBLE_EQ(r.y, 0.5 + 2 + 0.25);
  EXPECT_DOUBLE_EQ(r.z, -0.5 + 0.25 + 3);
  EXPECT_NEAR(t.frobenius(),
              std::sqrt(1 + 4 + 9 + 2 * (0.25 + 0.25 + 0.0625)), 1e-12);
}

TEST(BoxI, ExpandContainsVolume) {
  BoxI b = BoxI::empty();
  EXPECT_TRUE(b.isEmpty());
  b.expand({1, 2, 3});
  b.expand({4, 0, 5});
  EXPECT_EQ(b.lo, (Vec3i{1, 0, 3}));
  EXPECT_EQ(b.hi, (Vec3i{5, 3, 6}));
  EXPECT_EQ(b.volume(), 4LL * 3 * 3);
  EXPECT_TRUE(b.contains({1, 0, 3}));
  EXPECT_FALSE(b.contains({5, 0, 3}));  // hi is exclusive
}

TEST(BoxI, Intersect) {
  BoxI a{{0, 0, 0}, {10, 10, 10}};
  BoxI b{{5, -5, 8}, {15, 5, 20}};
  const BoxI c = a.intersect(b);
  EXPECT_EQ(c.lo, (Vec3i{5, 0, 8}));
  EXPECT_EQ(c.hi, (Vec3i{10, 5, 10}));
  BoxI d{{20, 20, 20}, {30, 30, 30}};
  EXPECT_TRUE(a.intersect(d).isEmpty());
}

TEST(BoxD, RayIntersectHitsAndMisses) {
  BoxD b{{0, 0, 0}, {1, 1, 1}};
  double t0, t1;
  ASSERT_TRUE(b.rayIntersect({-1, 0.5, 0.5}, {1, 0, 0}, t0, t1));
  EXPECT_NEAR(t0, 1.0, 1e-12);
  EXPECT_NEAR(t1, 2.0, 1e-12);
  EXPECT_FALSE(b.rayIntersect({-1, 2.0, 0.5}, {1, 0, 0}, t0, t1));
  // Ray starting inside: tNear clamps to 0.
  ASSERT_TRUE(b.rayIntersect({0.5, 0.5, 0.5}, {0, 0, 1}, t0, t1));
  EXPECT_DOUBLE_EQ(t0, 0.0);
  EXPECT_NEAR(t1, 0.5, 1e-12);
}

TEST(Morton, RoundTripExhaustiveSmall) {
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      for (int z = 0; z < 8; ++z) {
        const auto code = morton3(Vec3i{x, y, z});
        EXPECT_EQ(mortonDecode3(code), (Vec3i{x, y, z}));
      }
    }
  }
}

TEST(Morton, RoundTripLargeCoordinates) {
  const Vec3i p{(1 << 21) - 1, 12345, 999999};
  EXPECT_EQ(mortonDecode3(morton3(p)), p);
}

TEST(Morton, ParentChildRelation) {
  const auto code = morton3(Vec3i{5, 3, 7});
  for (int o = 0; o < 8; ++o) {
    const auto child = mortonChild(code, o);
    EXPECT_EQ(mortonParent(child), code);
    EXPECT_EQ(mortonOctant(child), o);
  }
}

TEST(Morton, OrderingIsHierarchical) {
  // All children of cell A precede all children of cell B when A < B.
  const auto a = morton3(Vec3i{1, 1, 1});
  const auto b = morton3(Vec3i{2, 1, 1});
  ASSERT_LT(a, b);
  EXPECT_LT(mortonChild(a, 7), mortonChild(b, 0));
}

TEST(Rng, DeterministicStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, ImbalanceFactor) {
  EXPECT_DOUBLE_EQ(imbalanceFactor({1, 1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(imbalanceFactor({2, 0}), 2.0);
  EXPECT_NEAR(imbalanceFactor({3, 1, 2}), 1.5, 1e-12);
}

TEST(Stats, RelativeL2) {
  EXPECT_DOUBLE_EQ(relativeL2({1, 2}, {1, 2}), 0.0);
  EXPECT_NEAR(relativeL2({1, 0}, {0, 0}), 1.0, 1e-12);  // absolute fallback
  EXPECT_NEAR(relativeL2({2, 0}, {1, 0}), 1.0, 1e-12);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 9
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(HEMO_CHECK(false), CheckError);
  try {
    HEMO_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Timer, PhaseTimerAccumulates) {
  PhaseTimer t;
  t.start();
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  t.stop();
  EXPECT_GT(t.total(), 0.0);
  const double after = t.total();
  t.reset();
  EXPECT_EQ(t.total(), 0.0);
  EXPECT_GT(after, 0.0);
}

}  // namespace
}  // namespace hemo

#include "util/hilbert.hpp"

namespace hemo {
namespace {

TEST(Hilbert, BijectiveOnSmallCube) {
  std::set<std::uint64_t> seen;
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      for (int z = 0; z < 8; ++z) {
        const auto h = hilbert3(Vec3i{x, y, z}, 3);
        EXPECT_LT(h, 512u);
        seen.insert(h);
      }
    }
  }
  EXPECT_EQ(seen.size(), 512u);  // a bijection onto [0, 8^3)
}

TEST(Hilbert, ConsecutiveIndicesAreAdjacentCells) {
  // The defining Hilbert property (which Morton lacks): cells at
  // consecutive curve positions share a face.
  std::vector<Vec3i> byIndex(512);
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      for (int z = 0; z < 8; ++z) {
        byIndex[hilbert3(Vec3i{x, y, z}, 3)] = {x, y, z};
      }
    }
  }
  for (std::size_t i = 1; i < byIndex.size(); ++i) {
    const Vec3i d = byIndex[i] - byIndex[i - 1];
    EXPECT_EQ(std::abs(d.x) + std::abs(d.y) + std::abs(d.z), 1)
        << "jump at index " << i;
  }
}

TEST(Hilbert, SegmentsMoreCompactThanMorton) {
  // The operational advantage of the Hilbert order: a contiguous run of
  // curve indices stays geometrically compact. Compare the mean bounding
  // box volume of length-64 segments against the Morton order on a 16^3
  // cube (Morton's octant jumps inflate the boxes).
  auto meanSegmentBoxVolume = [](auto indexOf) {
    std::vector<Vec3i> byIndex(16 * 16 * 16);
    for (int x = 0; x < 16; ++x) {
      for (int y = 0; y < 16; ++y) {
        for (int z = 0; z < 16; ++z) {
          byIndex[static_cast<std::size_t>(indexOf(Vec3i{x, y, z}))] =
              Vec3i{x, y, z};
        }
      }
    }
    double total = 0.0;
    int segments = 0;
    for (std::size_t start = 0; start + 64 <= byIndex.size(); start += 64) {
      BoxI box = BoxI::empty();
      for (std::size_t i = start; i < start + 64; ++i) box.expand(byIndex[i]);
      total += static_cast<double>(box.volume());
      ++segments;
    }
    return total / segments;
  };
  const double hilbertVol =
      meanSegmentBoxVolume([](const Vec3i& p) { return hilbert3(p, 4); });
  const double mortonVol =
      meanSegmentBoxVolume([](const Vec3i& p) { return morton3(p); });
  EXPECT_LE(hilbertVol, mortonVol);
  // Hilbert length-64 segments are connected, so they fit in tight boxes.
  EXPECT_LT(hilbertVol, 200.0);
}

}  // namespace
}  // namespace hemo
