// Fault-tolerance tests: the deterministic fault-injection harness, the
// validated striped checkpoint format (typed errors, CRC validation,
// atomic commit, bit-exact site ids), restore-latest fallback past a
// corrupted checkpoint, broker heartbeat eviction of wedged clients,
// client-side reconnect with session replay, graceful driver degradation
// when the serving plane dies, and recovery from a killed simulated rank.
//
// Registered under the `resilience` ctest label.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <thread>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "io/serial.hpp"
#include "lb/checkpoint.hpp"
#include "lb/solver.hpp"
#include "partition/partitioners.hpp"
#include "serve/broker.hpp"
#include "serve/client.hpp"
#include "steer/server.hpp"
#include "util/faultinject.hpp"

namespace hemo {
namespace {

// --- fault-injection harness -----------------------------------------------

TEST(FaultInject, RulesAreRankAddressableAndBounded) {
  util::FaultScope scope(42);
  util::FaultRule r;
  r.site = util::FaultSite::kCommSend;
  r.action = util::FaultAction::kDrop;
  r.rank = 1;
  r.afterHits = 2;
  r.maxFires = 3;
  scope.rule(r);
  auto& fi = util::FaultInjector::instance();

  // A non-matching rank never fires (and does not consume warmup hits).
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fi.decide(util::FaultSite::kCommSend, 0),
              util::FaultAction::kNone);
  }
  // Matching rank: afterHits warmup passes, then exactly maxFires fires.
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (fi.decide(util::FaultSite::kCommSend, 1) ==
        util::FaultAction::kDrop) {
      ++fires;
    }
  }
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(fi.fired(), 3u);
  EXPECT_EQ(fi.fired(util::FaultSite::kCommSend), 3u);
  EXPECT_EQ(fi.fired(util::FaultSite::kChannelSend), 0u);
}

TEST(FaultInject, DisarmedHooksAreInert) {
  auto& fi = util::FaultInjector::instance();
  EXPECT_FALSE(fi.armed());
  EXPECT_EQ(fi.decide(util::FaultSite::kChannelSend, 0),
            util::FaultAction::kNone);
  std::vector<std::byte> bytes(64, std::byte{7});
  fi.applyBufferFault(util::FaultSite::kCheckpointCommit, 0, bytes);
  EXPECT_EQ(bytes, std::vector<std::byte>(64, std::byte{7}));
}

TEST(FaultInject, BufferFaultsCorruptAndTruncateInPlace) {
  {
    util::FaultScope scope(7);
    util::FaultRule r;
    r.site = util::FaultSite::kCheckpointCommit;
    r.action = util::FaultAction::kCorrupt;
    scope.rule(r);
    std::vector<std::byte> bytes(256, std::byte{0x11});
    util::FaultInjector::instance().applyBufferFault(
        util::FaultSite::kCheckpointCommit, 0, bytes);
    int diffs = 0;
    std::size_t where = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      if (bytes[i] != std::byte{0x11}) {
        ++diffs;
        where = i;
      }
    }
    EXPECT_EQ(diffs, 1);       // exactly one byte flipped
    EXPECT_GE(where, 16u);     // magics/version stay intact
  }
  {
    util::FaultScope scope(7);
    util::FaultRule r;
    r.site = util::FaultSite::kCheckpointCommit;
    r.action = util::FaultAction::kTruncate;
    r.truncateTo = 10;
    scope.rule(r);
    std::vector<std::byte> bytes(256, std::byte{0x11});
    util::FaultInjector::instance().applyBufferFault(
        util::FaultSite::kCheckpointCommit, 0, bytes);
    EXPECT_EQ(bytes.size(), 10u);
  }
}

// --- checkpoint format ------------------------------------------------------

TEST(CheckpointFormat, SiteIdsAboveDoublePrecisionStayBitExact) {
  // 2^53 + odd is not representable as a double — the exact class of id
  // the v1 scatter corrupted by routing ids through a double vector.
  const std::uint64_t huge = (std::uint64_t{1} << 53) + 12345;
  ASSERT_NE(static_cast<std::uint64_t>(static_cast<double>(huge)), huge);

  const std::vector<std::uint64_t> ids{0, huge, (std::uint64_t{1} << 63) | 5};
  std::vector<std::vector<double>> f(
      19, std::vector<double>(ids.size(), 0.125));
  const auto blob = lb::ckptdetail::encodeBlob(ids, f);

  const std::string path = "/tmp/hemo_test_hugeids.hemockpt";
  std::uint64_t written = 0;
  ASSERT_TRUE(lb::ckptdetail::atomicWriteFile(
      lb::ckptdetail::stripePath(path, 0), 0,
      lb::ckptdetail::encodeStripeFile(7, 0, {blob}), &written));
  ASSERT_TRUE(lb::ckptdetail::atomicWriteFile(
      path, 0, lb::ckptdetail::encodeManifest(7, 19, 1, ids.size()),
      &written));

  lb::ParsedCheckpoint parsed;
  std::string detail;
  ASSERT_EQ(lb::parseCheckpoint(path, 19, parsed, &detail),
            lb::CkptStatus::kOk)
      << detail;
  EXPECT_EQ(parsed.step, 7u);
  ASSERT_EQ(parsed.blobs.size(), 1u);
  EXPECT_EQ(parsed.blobs[0].ids, ids);  // bit-exact round trip
  std::remove(path.c_str());
  std::remove(lb::ckptdetail::stripePath(path, 0).c_str());
}

geometry::SparseLattice tubeLattice(double length = 4.0) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.3;
  return geometry::voxelize(geometry::makeStraightTube(length, 1.0), opt);
}

lb::LbParams tubeParams() {
  lb::LbParams p;
  p.tau = 0.8;
  p.bodyForce = {1e-5, 0, 0};
  return p;
}

void flipByteOnDisk(const std::string& path, std::size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

TEST(Checkpoint, TypedErrorsInsteadOfAborts) {
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);
  const auto latBig = tubeLattice(6.0);
  const auto partBig =
      kway.partition(partition::buildSiteGraph(latBig), 2);
  const auto params = tubeParams();
  const std::string dir = "/tmp/hemo_test_typed_ckpt";
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/good.hemockpt";

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    lb::SolverD3Q19 solver(domain, comm, params);
    solver.run(3);
    lb::writeCheckpoint(path, solver, comm);

    // Missing file: typed, not an abort. Solver untouched on failure.
    auto r = lb::readCheckpoint(path + ".nope", solver, comm);
    EXPECT_EQ(r.status, lb::CkptStatus::kOpenFailed);
    EXPECT_EQ(solver.stepsDone(), 3u);

    // Not a checkpoint at all.
    const std::string junk = dir + "/junk.hemockpt";
    if (comm.rank() == 0) {
      io::Writer w;
      w.putString("NOTACKPT");
      std::uint64_t n = 0;
      lb::ckptdetail::atomicWriteFile(junk, 0, w.take(), &n);
    }
    r = lb::readCheckpoint(junk, solver, comm);
    EXPECT_EQ(r.status, lb::CkptStatus::kBadMagic);

    // One flipped byte inside a stripe blob: the CRC catches it.
    const std::string stripe = lb::ckptdetail::stripePath(path, 0);
    if (comm.rank() == 0) flipByteOnDisk(stripe, 100);
    r = lb::readCheckpoint(path, solver, comm);
    EXPECT_EQ(r.status, lb::CkptStatus::kCrcMismatch);
    if (comm.rank() == 0) flipByteOnDisk(stripe, 100);  // restore

    // Stripe cut short mid-structure.
    const std::string trunc = dir + "/trunc.hemockpt";
    if (comm.rank() == 0) {
      std::filesystem::copy_file(path, trunc);
      std::filesystem::copy_file(stripe,
                                 lb::ckptdetail::stripePath(trunc, 0));
      const auto full =
          std::filesystem::file_size(lb::ckptdetail::stripePath(trunc, 0));
      std::filesystem::resize_file(lb::ckptdetail::stripePath(trunc, 0),
                                   full / 2);
    }
    r = lb::readCheckpoint(trunc, solver, comm);
    EXPECT_EQ(r.status, lb::CkptStatus::kTruncated);

    // A valid checkpoint for a different lattice: geometry mismatch, and
    // the target solver is left untouched.
    lb::DomainMap bigDomain(latBig, partBig, comm.rank());
    lb::SolverD3Q19 bigSolver(bigDomain, comm, params);
    r = lb::readCheckpoint(path, bigSolver, comm);
    EXPECT_EQ(r.status, lb::CkptStatus::kGeometryMismatch);
    EXPECT_EQ(bigSolver.stepsDone(), 0u);

    // The pristine file still restores after all that.
    r = lb::readCheckpoint(path, solver, comm);
    EXPECT_TRUE(r.ok()) << r.detail;
    EXPECT_EQ(r.step, 3u);
  });
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, StripedWriteRestoresAcrossDifferentPartition) {
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  const auto params = tubeParams();
  const std::string dir = "/tmp/hemo_test_striped_ckpt";
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/ckpt.hemockpt";

  // Reference: 30 uninterrupted steps.
  std::vector<Vec3d> reference(lat.numFluidSites());
  {
    partition::MultilevelKWayPartitioner kway;
    const auto part = kway.partition(graph, 2);
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, params);
      solver.run(30);
      for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
        reference[static_cast<std::size_t>(domain.globalOf(l))] =
            solver.macro().u[l];
      }
    });
  }

  // Write at step 15 from 3 ranks into 2 stripes.
  std::uint64_t reportedBytes = 0;
  {
    partition::MultilevelKWayPartitioner kway;
    const auto part = kway.partition(graph, 3);
    comm::Runtime rt(3);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, params);
      solver.run(15);
      const auto total = lb::writeCheckpoint(path, solver, comm, {2});
      if (comm.rank() == 0) reportedBytes = total;
    });
  }

  // The reported byte count is what actually reached disk, the commit was
  // atomic (no .tmp leftovers), and both stripes exist.
  std::uint64_t onDisk = 0;
  int tmpFiles = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    onDisk += std::filesystem::file_size(entry.path());
    if (entry.path().extension() == ".tmp") ++tmpFiles;
  }
  EXPECT_EQ(onDisk, reportedBytes);
  EXPECT_EQ(tmpFiles, 0);
  EXPECT_TRUE(std::filesystem::exists(lb::ckptdetail::stripePath(path, 0)));
  EXPECT_TRUE(std::filesystem::exists(lb::ckptdetail::stripePath(path, 1)));

  // Restore into a different decomposition (2 ranks, RCB) and finish.
  std::vector<Vec3d> restored(lat.numFluidSites());
  {
    partition::RcbPartitioner rcb;
    const auto part = rcb.partition(graph, 2);
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, params);
      const auto r = lb::readCheckpoint(path, solver, comm);
      EXPECT_TRUE(r.ok()) << r.detail;
      EXPECT_EQ(r.step, 15u);
      EXPECT_EQ(solver.stepsDone(), 15u);
      solver.run(15);
      for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
        restored[static_cast<std::size_t>(domain.globalOf(l))] =
            solver.macro().u[l];
      }
    });
  }
  for (std::size_t g = 0; g < reference.size(); ++g) {
    EXPECT_NEAR((restored[g] - reference[g]).norm(), 0.0, 1e-13);
  }
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, CrossLayoutWriteAndRestoreBitExact) {
  // The checkpoint format is layout-agnostic: a run stores the same bytes
  // whether its distributions live in SoA planes or AoS records, and a
  // file written under one layout restores bit-exactly under the other.
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  auto params = tubeParams();
  const std::string dir = "/tmp/hemo_test_layout_ckpt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);

  const auto readAll = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  };

  // Same 10-step run under each layout → byte-identical checkpoints.
  for (const auto layout : {lb::Layout::kSoA, lb::Layout::kAoS}) {
    params.layout = layout;
    const std::string path =
        dir + (layout == lb::Layout::kSoA ? "/soa.hemockpt" : "/aos.hemockpt");
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, params);
      solver.run(10);
      lb::writeCheckpoint(path, solver, comm, {1});
    });
  }
  EXPECT_EQ(readAll(dir + "/soa.hemockpt"), readAll(dir + "/aos.hemockpt"));
  EXPECT_EQ(readAll(lb::ckptdetail::stripePath(dir + "/soa.hemockpt", 0)),
            readAll(lb::ckptdetail::stripePath(dir + "/aos.hemockpt", 0)));

  // Restore the SoA-written file under both layouts and gather every
  // distribution: the values must agree bit for bit.
  std::vector<std::vector<double>> gathered[2];
  for (const auto layout : {lb::Layout::kSoA, lb::Layout::kAoS}) {
    params.layout = layout;
    auto& out = gathered[layout == lb::Layout::kSoA ? 0 : 1];
    out.assign(19, std::vector<double>(lat.numFluidSites(), 0.0));
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      lb::SolverD3Q19 solver(domain, comm, params);
      const auto r = lb::readCheckpoint(dir + "/soa.hemockpt", solver, comm);
      ASSERT_TRUE(r.ok()) << r.detail;
      for (int i = 0; i < 19; ++i) {
        const auto fi = solver.distribution(i);
        for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
          out[static_cast<std::size_t>(i)]
             [static_cast<std::size_t>(domain.globalOf(l))] = fi[l];
        }
      }
    });
  }
  EXPECT_EQ(gathered[0], gathered[1]);
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, RestoreLatestFallsBackPastCorruptedCheckpoint) {
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);
  const auto params = tubeParams();
  const std::string dir = "/tmp/hemo_test_fallback_ckpt";
  std::filesystem::remove_all(dir);

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    lb::SolverD3Q19 solver(domain, comm, params);
    solver.run(5);
    lb::writeCheckpoint(dir + "/" + lb::checkpointFileName(5), solver, comm);
    solver.run(5);

    // The newer checkpoint is corrupted on its way to disk (only rank 0
    // writes with stripes=1, so only rank 0 arms the injector).
    if (comm.rank() == 0) {
      util::FaultInjector::instance().arm(99);
      util::FaultRule r;
      r.site = util::FaultSite::kCheckpointCommit;
      r.action = util::FaultAction::kCorrupt;
      r.rank = 0;
      r.maxFires = 1;  // mangle the stripe file, leave the manifest alone
      util::FaultInjector::instance().addRule(r);
    }
    lb::writeCheckpoint(dir + "/" + lb::checkpointFileName(10), solver,
                        comm);
    if (comm.rank() == 0) {
      EXPECT_EQ(util::FaultInjector::instance().fired(
                    util::FaultSite::kCheckpointCommit),
                1u);
      util::FaultInjector::instance().disarm();
    }

    // restoreLatest tries step 10 (CRC fails), falls back to step 5.
    lb::SolverD3Q19 fresh(domain, comm, params);
    const auto r = lb::restoreLatest(dir, fresh, comm);
    EXPECT_TRUE(r.ok()) << r.detail;
    EXPECT_EQ(r.step, 5u);
    EXPECT_EQ(fresh.stepsDone(), 5u);
  });
  std::filesystem::remove_all(dir);
}

// --- broker session recovery ------------------------------------------------

TEST(BrokerRecovery, HeartbeatsEvictWedgedClientOnly) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    serve::BrokerConfig cfg;
    cfg.heartbeatEvery = 1;
    cfg.missedHeartbeatLimit = 2;
    serve::SessionBroker broker(cfg);
    serve::ServeClient healthy(broker.connect());
    serve::ServeClient wedged(broker.connect());

    for (std::uint64_t step = 0; step < 6; ++step) {
      for (const auto& cmd : broker.drainCommands(comm, step)) {
        broker.respondAck(comm, cmd.commandId);
      }
      // The healthy client polls (auto-acking heartbeats); the wedged one
      // never touches its channel.
      while (healthy.pollEvent()) {
      }
    }
    EXPECT_TRUE(broker.clientAlive(0));
    EXPECT_FALSE(broker.clientAlive(1));
    EXPECT_EQ(broker.numAliveClients(), 1);
    EXPECT_EQ(broker.stats().evictions, 1u);
    EXPECT_GT(broker.stats().heartbeats, 0u);

    // The evicted outbox is released; serving continues unharmed.
    for (const auto& cmd : broker.drainCommands(comm, 6)) {
      broker.respondAck(comm, cmd.commandId);
    }
    broker.closeAll();
    (void)wedged;
  });
}

TEST(BrokerRecovery, TruncatedFrameEvictsThenClientReconnectsAndResumes) {
  comm::Runtime rt(1);
  rt.run([](comm::Communicator& comm) {
    serve::SessionBroker broker;
    serve::ServeClient client(broker.connect());
    client.enableReconnect([&broker] { return broker.requestConnect(true); });

    {
      // Truncate the subscribe frame in flight: the broker cannot decode
      // it and evicts the sender.
      util::FaultScope scope(5);
      util::FaultRule r;
      r.site = util::FaultSite::kChannelSend;
      r.action = util::FaultAction::kTruncate;
      r.truncateTo = 4;
      r.maxFires = 1;
      scope.rule(r);
      client.subscribe(serve::StreamKind::kStatus, 1);
      EXPECT_TRUE(broker.drainCommands(comm, 0).empty());
      EXPECT_EQ(broker.stats().evictions, 1u);
      EXPECT_FALSE(broker.clientAlive(0));
    }

    // The client notices EOF, redials through requestConnect, and replays
    // its subscription; the broker admits it on the next drain.
    EXPECT_FALSE(client.pollEvent().has_value());
    EXPECT_EQ(client.reconnects(), 1u);

    int statuses = 0;
    for (std::uint64_t step = 1; step <= 3; ++step) {
      for (const auto& cmd : broker.drainCommands(comm, step)) {
        if (cmd.type == steer::MsgType::kRequestStatus) {
          steer::StatusReport status;
          status.step = step;
          broker.respondStatus(comm, cmd.commandId, status);
        }
        broker.respondAck(comm, cmd.commandId);
      }
      while (auto event = client.pollEvent()) {
        if (event->type == steer::MsgType::kStatus) ++statuses;
      }
    }
    EXPECT_EQ(broker.stats().reconnects, 1u);
    EXPECT_EQ(statuses, 3);  // stream resumed at full cadence
    broker.closeAll();
  });
}

TEST(ClientRecovery, ReconnectRetriesConnectorWithBoundedAttempts) {
  auto pair = comm::makeChannelPair();
  serve::ServeClient client(std::move(pair.first));
  pair.second.close();  // peer gone immediately

  int calls = 0;
  comm::ChannelEnd replacementPeer;
  serve::ReconnectConfig cfg;
  cfg.maxAttempts = 8;
  cfg.baseDelayMillis = 0;  // keep the unit test sleep-free
  client.enableReconnect(
      [&] {
        ++calls;
        if (calls < 3) return comm::ChannelEnd{};  // "try again later"
        auto fresh = comm::makeChannelPair();
        replacementPeer = std::move(fresh.second);
        return std::move(fresh.first);
      },
      cfg);

  EXPECT_FALSE(client.pollEvent().has_value());
  EXPECT_EQ(calls, 3);  // two failures, then success
  EXPECT_EQ(client.reconnects(), 1u);

  // The redialled channel is live end to end.
  steer::StatusReport s;
  s.step = 3;
  ASSERT_TRUE(replacementPeer.send(steer::encodeStatus(s)));
  const auto event = client.pollEvent();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->status.step, 3u);
}

TEST(ClientRecovery, CorruptFrameIsSkippedNotFatal) {
  auto pair = comm::makeChannelPair();
  serve::ServeClient client(std::move(pair.first));
  auto& peer = pair.second;

  peer.send(std::vector<std::byte>(3, std::byte{0xee}));  // undecodable
  steer::StatusReport s;
  s.step = 9;
  peer.send(steer::encodeStatus(s));

  const auto event = client.pollEvent();  // skips the mangled frame
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->status.step, 9u);
  EXPECT_EQ(client.corruptFramesSkipped(), 1u);
}

// --- driver-level recovery --------------------------------------------------

core::DriverConfig plainDriverConfig() {
  core::DriverConfig dcfg;
  dcfg.lb.tau = 0.8;
  dcfg.lb.bodyForce = {1e-5, 0, 0};
  dcfg.computeWss = false;
  dcfg.visEvery = 0;
  dcfg.statusEvery = 0;
  return dcfg;
}

TEST(DriverRecovery, BrokerFailureDegradesToSolverOnly) {
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);

  serve::SessionBroker broker;
  serve::ServeClient client(broker.connect());
  client.subscribe(serve::StreamKind::kStatus, 2);

  util::FaultScope scope(3);
  util::FaultRule r;
  r.site = util::FaultSite::kBrokerPoll;
  r.action = util::FaultAction::kFail;
  r.afterHits = 3;
  r.maxFires = 1;
  scope.rule(r);

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    core::SimulationDriver driver(domain, comm, plainDriverConfig());
    driver.attachBroker(comm.rank() == 0 ? &broker : nullptr);
    // The broker dies on the 4th poll; the run must still complete every
    // step, degraded to solver-only, identically on both ranks.
    EXPECT_EQ(driver.run(10), 10);
    EXPECT_FALSE(driver.brokerHealthy());
    EXPECT_EQ(driver.solver().stepsDone(), 10u);
  });
}

TEST(DriverRecovery, KilledRankRestoresFromCheckpointAndMatchesReference) {
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);
  const std::string dir = "/tmp/hemo_test_kill_ckpt";
  std::filesystem::remove_all(dir);

  auto ckptConfig = plainDriverConfig();
  ckptConfig.checkpointEvery = 5;
  ckptConfig.checkpointDir = dir;

  // Reference: 12 uninterrupted steps (no checkpointing).
  std::vector<Vec3d> reference(lat.numFluidSites());
  {
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      core::SimulationDriver driver(domain, comm, plainDriverConfig());
      driver.run(12);
      for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
        reference[static_cast<std::size_t>(domain.globalOf(l))] =
            driver.solver().macro().u[l];
      }
    });
  }

  // Rank 1 dies at its 8th step — after the step-5 checkpoint committed.
  {
    util::FaultScope scope(11);
    util::FaultRule r;
    r.site = util::FaultSite::kDriverStep;
    r.action = util::FaultAction::kKill;
    r.rank = 1;
    r.afterHits = 7;
    r.maxFires = 1;
    scope.rule(r);
    comm::Runtime rt(2);
    EXPECT_THROW(rt.run([&](comm::Communicator& comm) {
                   lb::DomainMap domain(lat, part, comm.rank());
                   core::SimulationDriver driver(domain, comm, ckptConfig);
                   driver.run(12);
                 }),
                 util::RankKilledError);
  }

  // Fresh job: restore the newest valid checkpoint and finish the run.
  std::vector<Vec3d> recovered(lat.numFluidSites());
  {
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      core::SimulationDriver driver(domain, comm, ckptConfig);
      const auto r = driver.restoreLatest();
      EXPECT_TRUE(r.ok()) << r.detail;
      EXPECT_EQ(r.step, 5u);
      driver.run(12 - static_cast<int>(r.step));
      EXPECT_EQ(driver.solver().stepsDone(), 12u);
      for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
        recovered[static_cast<std::size_t>(domain.globalOf(l))] =
            driver.solver().macro().u[l];
      }
    });
  }
  for (std::size_t g = 0; g < reference.size(); ++g) {
    EXPECT_NEAR((recovered[g] - reference[g]).norm(), 0.0, 1e-13);
  }
  std::filesystem::remove_all(dir);
}

TEST(DriverRecovery, CheckpointEveryWritesAndPrunes) {
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);
  const std::string dir = "/tmp/hemo_test_policy_ckpt";
  std::filesystem::remove_all(dir);

  auto cfg = plainDriverConfig();
  cfg.checkpointEvery = 2;
  cfg.checkpointDir = dir;
  cfg.checkpointKeep = 2;

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    core::SimulationDriver driver(domain, comm, cfg);
    driver.run(10);  // checkpoints at 2, 4, 6, 8, 10 — keep the last two
  });

  const auto kept = lb::listCheckpoints(dir);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].first, 10u);
  EXPECT_EQ(kept[1].first, 8u);
  // Pruning removed stripe files of deleted checkpoints, and no .tmp
  // leftovers exist.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const auto name = entry.path().filename().string();
    EXPECT_TRUE(name.rfind("ckpt_000000000008", 0) == 0 ||
                name.rfind("ckpt_000000000010", 0) == 0)
        << name;
    EXPECT_NE(entry.path().extension(), ".tmp");
  }
  std::filesystem::remove_all(dir);
}

// --- guarded steering + stability sentinel ----------------------------------

/// Gather this rank's macroscopic fields into global arrays for exact
/// (bit-identical) cross-run comparison.
void collectMacro(const lb::DomainMap& domain, const lb::SolverD3Q19& solver,
                  std::vector<double>& rho, std::vector<Vec3d>& u) {
  for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
    const auto g = static_cast<std::size_t>(domain.globalOf(l));
    rho[g] = solver.macro().rho[l];
    u[g] = solver.macro().u[l];
  }
}

TEST(Guard, RejectedCommandsNeverTouchSolverState) {
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);

  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  steer::SteeringClient client(clientEnd);
  // Every classic run-killer, pre-queued so the driver sees them on its
  // first poll. Each must be refused with its own reason, in order.
  struct BadCommand {
    steer::Command cmd;
    steer::RejectReason want;
  };
  std::vector<BadCommand> bad;
  {
    steer::Command c;
    c.type = steer::MsgType::kSetTau;
    c.value = 0.2;  // below the stability bound
    bad.push_back({c, steer::RejectReason::kTauUnstable});
    c.value = std::numeric_limits<double>::quiet_NaN();
    bad.push_back({c, steer::RejectReason::kNonFinite});
    c = {};
    c.type = steer::MsgType::kSetBodyForce;
    c.force = {std::numeric_limits<double>::infinity(), 0, 0};
    bad.push_back({c, steer::RejectReason::kNonFinite});
    c = {};
    c.type = steer::MsgType::kSetIoletDensity;
    c.ioletId = 99;
    c.value = 1.0;
    bad.push_back({c, steer::RejectReason::kIoletOutOfRange});
    c.ioletId = 0;
    c.value = -5.0;
    bad.push_back({c, steer::RejectReason::kValueOutOfRange});
    c = {};
    c.type = steer::MsgType::kSetRoi;
    c.roi = {{1000, 1000, 1000}, {1010, 1010, 1010}};  // fully outside
    bad.push_back({c, steer::RejectReason::kRoiOutsideLattice});
  }
  std::vector<std::uint32_t> sentIds;
  for (const auto& b : bad) sentIds.push_back(client.send(b.cmd));

  std::vector<double> steeredRho(lat.numFluidSites());
  std::vector<Vec3d> steeredU(lat.numFluidSites());
  {
    comm::Runtime rt(2);
    rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      core::SimulationDriver driver(
          domain, comm, plainDriverConfig(),
          comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
      EXPECT_EQ(driver.run(30), 30);
      collectMacro(domain, driver.solver(), steeredRho, steeredU);
    });
  }

  // Every command was answered with its typed NACK, in order.
  for (std::size_t i = 0; i < bad.size(); ++i) {
    const auto rej = client.awaitReject();
    ASSERT_TRUE(rej.has_value()) << "command " << i;
    EXPECT_EQ(static_cast<int>(rej->type),
              static_cast<int>(steer::MsgType::kReject));
    EXPECT_EQ(rej->commandId, sentIds[i]);
    EXPECT_EQ(static_cast<int>(rej->reason), static_cast<int>(bad[i].want))
        << steer::rejectReasonName(bad[i].want);
  }

  // Reference: the identical run with no steering attached at all.
  std::vector<double> cleanRho(lat.numFluidSites());
  std::vector<Vec3d> cleanU(lat.numFluidSites());
  {
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      core::SimulationDriver driver(domain, comm, plainDriverConfig());
      EXPECT_EQ(driver.run(30), 30);
      collectMacro(domain, driver.solver(), cleanRho, cleanU);
    });
  }

  // Rejected commands provably never mutated solver state: the fields are
  // bit-identical, not just close.
  for (std::size_t g = 0; g < cleanRho.size(); ++g) {
    ASSERT_EQ(steeredRho[g], cleanRho[g]) << "site " << g;
    ASSERT_EQ(steeredU[g].x, cleanU[g].x) << "site " << g;
    ASSERT_EQ(steeredU[g].y, cleanU[g].y) << "site " << g;
    ASSERT_EQ(steeredU[g].z, cleanU[g].z) << "site " << g;
  }
}

TEST(Sentinel, OffAndOnAreBitIdentical) {
  // The sentinel is a pure observer: enabling it must not perturb the
  // trajectory by a single bit (its reductions run out-of-band).
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);

  auto runWith = [&](int checkEvery, std::vector<double>& rho,
                     std::vector<Vec3d>& u) {
    auto cfg = plainDriverConfig();
    cfg.sentinel.checkEvery = checkEvery;
    comm::Runtime rt(2);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lat, part, comm.rank());
      core::SimulationDriver driver(domain, comm, cfg);
      EXPECT_EQ(driver.run(20), 20);
      EXPECT_EQ(driver.rollbacksDone(), 0);
      collectMacro(domain, driver.solver(), rho, u);
    });
  };
  std::vector<double> offRho(lat.numFluidSites()), onRho(lat.numFluidSites());
  std::vector<Vec3d> offU(lat.numFluidSites()), onU(lat.numFluidSites());
  runWith(0, offRho, offU);
  runWith(5, onRho, onU);
  for (std::size_t g = 0; g < offRho.size(); ++g) {
    ASSERT_EQ(offRho[g], onRho[g]) << "site " << g;
    ASSERT_EQ(offU[g].x, onU[g].x) << "site " << g;
    ASSERT_EQ(offU[g].y, onU[g].y) << "site " << g;
    ASSERT_EQ(offU[g].z, onU[g].z) << "site " << g;
  }
}

TEST(Sentinel, DivergenceTriggersRollbackAndQuarantine) {
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);
  const std::string dir = "/tmp/hemo_test_sentinel_rollback";
  std::filesystem::remove_all(dir);

  auto cfg = plainDriverConfig();
  cfg.lb.bodyForce = {5e-3, 0, 0};  // keeps accelerating a low-tau run
  cfg.statusEvery = 10;
  cfg.checkpointEvery = 10;
  cfg.checkpointDir = dir;
  cfg.checkpointKeep = 8;
  cfg.sentinel.checkEvery = 5;
  cfg.sentinel.maxSpeed = 0.3;
  cfg.sentinel.maxRollbacks = 3;
  // The injected tau (0.502) is exactly what the stage-1 guard exists to
  // refuse — disable it so the stage-2 sentinel has something to catch.
  cfg.guard.enabled = false;

  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  std::uint32_t badId = 0;
  std::optional<steer::Reject> nack;
  std::thread user([clientEnd = clientEnd, &badId, &nack]() mutable {
    steer::SteeringClient client(clientEnd);
    // Wait for the first status: by then the step-10 checkpoint exists.
    const auto status = client.awaitStatus();
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->consistencyStep, status->step);
    steer::Command c;
    c.type = steer::MsgType::kSetTau;
    c.value = 0.502;  // near-zero viscosity: diverges under the body force
    badId = client.send(c);
    // The sentinel must eventually quarantine it retroactively.
    nack = client.awaitReject();
  });

  comm::Runtime rt(2);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    core::SimulationDriver driver(
        domain, comm, cfg, comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    const int executed = driver.run(200);
    // Divergence was caught and rolled back — the run finished all its
    // steps instead of aborting or terminating early.
    EXPECT_EQ(executed, 200);
    EXPECT_FALSE(driver.terminated());
    EXPECT_GE(driver.rollbacksDone(), 1);
    // The quarantine reverted the poisoned parameter...
    EXPECT_DOUBLE_EQ(driver.solver().params().tau, 0.8);
    // ...and the final state is finite everywhere.
    for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
      ASSERT_TRUE(std::isfinite(driver.solver().macro().rho[l]));
      ASSERT_TRUE(std::isfinite(driver.solver().macro().u[l].norm()));
    }
  });
  user.join();

  ASSERT_TRUE(nack.has_value());
  EXPECT_EQ(static_cast<int>(nack->type),
            static_cast<int>(steer::MsgType::kRejectedAfterRollback));
  EXPECT_EQ(nack->commandId, badId);
  EXPECT_EQ(static_cast<int>(nack->reason),
            static_cast<int>(steer::RejectReason::kDivergence));
  std::filesystem::remove_all(dir);
}

TEST(Sentinel, ExhaustedRetriesProduceDiagnosticDumpNotAbort) {
  const auto lat = tubeLattice();
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 2);
  const std::string dump = "/tmp/hemo_test_sentinel_dump.txt";
  std::remove(dump.c_str());

  auto cfg = plainDriverConfig();
  // A violent body force with no checkpoints to roll back to: the sentinel
  // must degrade to the diagnostic dump and stop cleanly, never abort.
  cfg.lb.bodyForce = {0.2, 0, 0};
  cfg.sentinel.checkEvery = 2;
  cfg.sentinel.dumpPath = dump;

  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    core::SimulationDriver driver(domain, comm, cfg);
    const int executed = driver.run(50);
    EXPECT_LT(executed, 50);  // stopped at the first unrecoverable window
    EXPECT_TRUE(driver.terminated());
    EXPECT_EQ(driver.rollbacksDone(), 0);
    EXPECT_EQ(driver.lastStatus().consistencyOk, 0);
  });

  // The dump names the offending window, the per-rank extrema, and the
  // recent command history — what an operator needs post mortem.
  std::ifstream in(dump);
  ASSERT_TRUE(in.good()) << dump;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("offending step"), std::string::npos);
  EXPECT_NE(text.find("per-rank extrema"), std::string::npos);
  EXPECT_NE(text.find("rank 1"), std::string::npos);
  EXPECT_NE(text.find("last applied steered commands"), std::string::npos);
  std::remove(dump.c_str());
}

}  // namespace
}  // namespace hemo
