// hemo_postmortem: pretty-print a flight-recorder postmortem bundle.
//
// Usage: hemo_postmortem <postmortem_*.json> [...]
//
// Exit status: 0 when every bundle rendered, 1 on usage error or when any
// bundle failed to load/parse (remaining bundles still render).

#include <cstdio>
#include <exception>
#include <string>

#include "telemetry/postmortem.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <postmortem_*.json> [...]\n"
                 "Renders flight-recorder postmortem bundles written on "
                 "crash/sentinel exhaustion.\n",
                 argv[0]);
    return 1;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    try {
      const std::string report =
          hemo::telemetry::renderPostmortemFile(argv[i]);
      if (argc > 2) std::printf("### %s\n", argv[i]);
      std::fputs(report.c_str(), stdout);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[i], e.what());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
