// hemo_rankdeath_soak: seeded random rank-death soak for the
// shrink-and-continue recovery path (core/recovery.hpp).
//
// Each iteration draws a victim rank and a kill step from a seeded PRNG,
// injects the kill (util::FaultInjector), runs the simulation through
// ResilientRunner on N thread-ranks, and compares the surviving ranks'
// final velocity field against an uninterrupted serial reference to
// 1e-13 — the LB update is per-site, so recovery must be bit-clean, not
// merely plausible. Disk and buddy restore ladders alternate per
// iteration (odd iterations run diskless).
//
// Exit code 0 iff every iteration completed on the survivors and matched
// the reference. On failure the flight recorder's postmortem bundles are
// left in --out for upload; CI runs this in the Release job and attaches
// that directory as an artifact when the step fails.
//
// Usage: hemo_rankdeath_soak [--seed S] [--iterations K] [--ranks N]
//                            [--steps T] [--checkpoint-every C] [--out DIR]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "core/recovery.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "lb/domain_map.hpp"
#include "lb/solver.hpp"
#include "partition/partitioners.hpp"
#include "util/faultinject.hpp"

namespace {

using namespace hemo;

struct Options {
  unsigned seed = 1234;
  int iterations = 4;
  int ranks = 6;
  int steps = 24;
  int checkpointEvery = 5;
  std::string out = "rankdeath-soak";
};

Options parseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto eatInt = [&](const char* flag, int& slot) {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
        slot = std::atoi(argv[++i]);
        return true;
      }
      return false;
    };
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = static_cast<unsigned>(std::atoi(argv[++i]));
      continue;
    }
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
      continue;
    }
    if (eatInt("--iterations", opt.iterations) ||
        eatInt("--ranks", opt.ranks) || eatInt("--steps", opt.steps) ||
        eatInt("--checkpoint-every", opt.checkpointEvery)) {
      continue;
    }
    std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
    std::exit(2);
  }
  return opt;
}

geometry::SparseLattice soakLattice() {
  geometry::VoxelizeOptions vopt;
  vopt.voxelSize = 0.3;
  return geometry::voxelize(geometry::makeStraightTube(4.0, 1.0), vopt);
}

lb::LbParams soakParams() {
  lb::LbParams p;
  p.tau = 0.8;
  p.bodyForce = {1e-5, 0, 0};
  return p;
}

/// Gather one rank's velocity field into the shared global array.
void collectU(const lb::DomainMap& domain, const lb::SolverD3Q19& solver,
              std::vector<Vec3d>& u) {
  for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
    u[static_cast<std::size_t>(domain.globalOf(l))] = solver.macro().u[l];
  }
}

std::vector<Vec3d> serialReference(const geometry::SparseLattice& lat,
                                   int steps) {
  const auto graph = partition::buildSiteGraph(lat);
  partition::MultilevelKWayPartitioner kway;
  const auto part = kway.partition(graph, 1);
  std::vector<Vec3d> u(lat.numFluidSites());
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, part, comm.rank());
    lb::SolverD3Q19 solver(domain, comm, soakParams());
    solver.run(steps);
    collectU(domain, solver, u);
  });
  return u;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parseArgs(argc, argv);
  if (opt.ranks < 3 || opt.steps < 4) {
    std::fprintf(stderr, "need --ranks >= 3 and --steps >= 4\n");
    return 2;
  }
  std::filesystem::create_directories(opt.out);

  const auto lattice = soakLattice();
  const auto reference = serialReference(lattice, opt.steps);
  std::printf("rank-death soak: seed=%u iterations=%d ranks=%d steps=%d "
              "ckpt-every=%d sites=%llu\n",
              opt.seed, opt.iterations, opt.ranks, opt.steps,
              opt.checkpointEvery,
              static_cast<unsigned long long>(lattice.numFluidSites()));

  std::mt19937 rng(opt.seed);
  partition::MultilevelKWayPartitioner kway;
  int failures = 0;

  for (int it = 0; it < opt.iterations; ++it) {
    // Any rank may die at any step; odd iterations run diskless so both
    // rungs of the restore ladder see random kill points.
    const int victim =
        std::uniform_int_distribution<int>(0, opt.ranks - 1)(rng);
    const int killStep =
        std::uniform_int_distribution<int>(2, opt.steps - 1)(rng);
    const bool buddy = it % 2 == 1;

    const std::string ckptDir = opt.out + "/ckpt_it" + std::to_string(it);
    core::DriverConfig cfg;
    cfg.lb = soakParams();
    cfg.computeWss = false;
    cfg.visEvery = 0;
    cfg.statusEvery = 0;
    cfg.checkpointEvery = opt.checkpointEvery;
    if (!buddy) cfg.checkpointDir = ckptDir;
    cfg.flight.enabled = true;
    cfg.flight.dir = opt.out;

    core::RecoveryConfig rcfg;
    rcfg.liveness = {true, 2000, 5};
    rcfg.buddy = buddy;

    util::FaultScope scope(static_cast<int>(opt.seed) + it);
    util::FaultRule rule;
    rule.site = util::FaultSite::kDriverStep;
    rule.action = util::FaultAction::kKill;
    rule.rank = victim;
    rule.afterHits = static_cast<std::uint64_t>(killStep - 1);
    rule.maxFires = 1;
    scope.rule(rule);

    std::vector<Vec3d> u(lattice.numFluidSites());
    core::ResilientRunner runner(lattice, kway, cfg, rcfg);
    const auto result = runner.run(
        opt.ranks, opt.steps,
        [&u](const lb::DomainMap& domain, core::SimulationDriver& driver,
             comm::Communicator&) { collectU(domain, driver.solver(), u); });

    bool ok = result.completed && !result.events.empty();
    double worst = 0.0;
    if (ok) {
      for (std::size_t g = 0; g < reference.size(); ++g) {
        worst = std::max(worst, (u[g] - reference[g]).norm());
      }
      ok = worst <= 1e-13;
    }
    const auto& mode = buddy ? "buddy" : "disk";
    if (ok) {
      std::printf("  it %d: kill rank %d at step %d (%s) -> recovered on %d "
                  "ranks, restored from step %llu, max |du| = %.2e\n",
                  it, victim, killStep, mode, result.survivors,
                  static_cast<unsigned long long>(
                      result.events[0].restoredStep),
                  worst);
    } else {
      std::printf("  it %d: kill rank %d at step %d (%s) -> FAILED "
                  "(completed=%d events=%zu max |du| = %.2e) %s\n",
                  it, victim, killStep, mode, result.completed ? 1 : 0,
                  result.events.size(), worst, result.error.c_str());
      ++failures;
    }
    std::filesystem::remove_all(ckptDir);
  }

  if (failures > 0) {
    std::printf("rank-death soak: %d/%d iteration(s) FAILED; postmortem "
                "bundles (if any) are in %s\n",
                failures, opt.iterations, opt.out.c_str());
    return 1;
  }
  std::printf("rank-death soak: all %d iterations recovered bit-clean\n",
              opt.iterations);
  return 0;
}
