// hemo_relay: single-process relay-tier soak harness.
//
// The repo's transport is the in-process channel (the stand-in for a
// socket), so the "processes" of the relay tier — rank-0 broker, relay
// nodes, display clients — run as threads of one binary wired through
// channel pairs. The topology mirrors the deployment sketch: the solver
// (2 comm ranks) publishes through a SessionBroker; relays subscribe once
// upstream (broker, or relay 0 when --depth 2 builds a chain) and fan out
// to --clients-per-relay downstream sessions each.
//
// --kill-relay N crashes relay N (no drain) once it has forwarded a few
// frames; its clients must redial a surviving tier through their
// reconnect connectors and keep receiving. Exit code 0 iff the solver run
// completes, every client got at least one usable frame, clients of the
// killed relay actually reconnected, and the broker never served more
// sessions than direct relays.
//
// Usage: hemo_relay [--steps N] [--relays R] [--clients-per-relay K]
//                   [--depth {1,2}] [--kill-relay N] [--cadence C]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "core/preprocess.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "relay/relay.hpp"
#include "serve/broker.hpp"
#include "serve/client.hpp"

namespace {

struct Options {
  int steps = 60;
  int relays = 2;
  int clientsPerRelay = 16;
  int depth = 1;
  int killRelay = -1;  ///< relay index to crash mid-stream; -1 = none
  int cadence = 2;
};

Options parseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto eat = [&](const char* flag, int& slot) {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
        slot = std::atoi(argv[++i]);
        return true;
      }
      return false;
    };
    if (eat("--steps", opt.steps) || eat("--relays", opt.relays) ||
        eat("--clients-per-relay", opt.clientsPerRelay) ||
        eat("--depth", opt.depth) || eat("--kill-relay", opt.killRelay) ||
        eat("--cadence", opt.cadence)) {
      continue;
    }
    std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
    std::exit(2);
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hemo;
  const Options opt = parseArgs(argc, argv);

  geometry::VoxelizeOptions vopt;
  vopt.voxelSize = 0.3;
  const auto lat =
      geometry::voxelize(geometry::makeAneurysmVessel(5.0, 1.0, 1.0), vopt);
  const auto pre = core::preprocess(lat, 2, core::PreprocessConfig{});

  serve::BrokerConfig bcfg;
  bcfg.outboxCapacity = 32;
  serve::SessionBroker broker(bcfg);

  serve::CodecConfig codec;
  codec.progressive = true;
  codec.rleImage = true;

  // --- relay tier --------------------------------------------------------
  std::vector<std::unique_ptr<relay::RelayNode>> relays;
  for (int r = 0; r < opt.relays; ++r) {
    relay::RelayConfig rcfg;
    const bool chained = opt.depth >= 2 && r > 0;
    rcfg.depth = chained ? 2 : 1;
    auto upstream = chained ? relays[0]->connect() : broker.connect();
    auto node = std::make_unique<relay::RelayNode>(std::move(upstream), rcfg);
    if (chained) {
      relay::RelayNode* parent = relays[0].get();
      node->enableUpstreamReconnect(
          [parent] { return parent->requestConnect(); });
    } else {
      node->enableUpstreamReconnect(
          [&broker] { return broker.requestConnect(true); });
    }
    node->start(codec);
    relays.push_back(std::move(node));
  }

  // --- clients ----------------------------------------------------------
  const int numClients = opt.relays * opt.clientsPerRelay;
  std::vector<std::unique_ptr<serve::ServeClient>> clients;
  for (int r = 0; r < opt.relays; ++r) {
    for (int k = 0; k < opt.clientsPerRelay; ++k) {
      auto client =
          std::make_unique<serve::ServeClient>(relays[static_cast<std::size_t>(r)]->connect());
      // On relay loss, redial the next relay (survivor) — never the broker,
      // whose fan-out must stay bounded by the relay count.
      relay::RelayNode* fallback =
          relays[static_cast<std::size_t>((r + 1) % opt.relays)].get();
      client->enableReconnect([fallback] { return fallback->requestConnect(); });
      client->subscribe(serve::StreamKind::kImage, opt.cadence);
      clients.push_back(std::move(client));
    }
  }

  // --- threads ----------------------------------------------------------
  std::atomic<bool> stop{false};
  std::atomic<bool> kill{false};
  std::vector<std::thread> relayThreads;
  for (int r = 0; r < opt.relays; ++r) {
    relay::RelayNode* node = relays[static_cast<std::size_t>(r)].get();
    const bool victim = r == opt.killRelay;
    relayThreads.emplace_back([node, victim, &stop, &kill] {
      for (;;) {
        if (victim && kill.load()) {
          node->shutdown(/*drain=*/false);  // crash: no tail, instant EOF
          return;
        }
        if (stop.load()) {
          node->shutdown();
          return;
        }
        if (node->pump() == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }

  std::vector<std::uint64_t> framesGot(static_cast<std::size_t>(numClients), 0);
  std::vector<std::thread> clientThreads;
  for (int c = 0; c < numClients; ++c) {
    serve::ServeClient* client = clients[static_cast<std::size_t>(c)].get();
    auto* got = &framesGot[static_cast<std::size_t>(c)];
    clientThreads.emplace_back([client, got, &stop] {
      while (!stop.load()) {
        bool idle = true;
        while (auto event = client->pollEvent()) {
          idle = false;
          if (event->progressiveReady ||
              event->type == steer::MsgType::kImageFrame ||
              event->type == steer::MsgType::kCodedImage) {
            ++*got;
          }
        }
        if (idle) std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  // Kill trigger: once the victim has forwarded a few frames mid-stream.
  std::thread killer;
  if (opt.killRelay >= 0 && opt.killRelay < opt.relays) {
    relay::RelayNode* victim = relays[static_cast<std::size_t>(opt.killRelay)].get();
    killer = std::thread([victim, &kill, &stop] {
      while (!stop.load() && victim->stats().framesFromUpstream < 4) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      kill.store(true);
    });
  }

  // --- solver run (blocks until the steps complete) ----------------------
  int executed = 0;
  comm::Runtime rt(2);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lat, pre.partition, comm.rank());
    core::DriverConfig dcfg;
    dcfg.lb.tau = 0.8;
    dcfg.lb.bodyForce = {1e-5, 0, 0};
    dcfg.lb.computeStress = true;
    dcfg.render.width = 48;
    dcfg.render.height = 48;
    dcfg.render.camera.position = {2.5, 0.5, 8.0};
    dcfg.render.camera.target = {2.5, 0.5, 0.0};
    dcfg.visEvery = 0;
    dcfg.statusEvery = 0;
    core::SimulationDriver driver(domain, comm, dcfg);
    driver.attachBroker(comm.rank() == 0 ? &broker : nullptr);
    const int done = driver.run(opt.steps);
    if (comm.rank() == 0) executed = done;
  });

  // Let the tier drain the tail, then stop everything.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  kill.store(true);
  if (killer.joinable()) killer.join();
  for (auto& t : relayThreads) t.join();
  for (auto& t : clientThreads) t.join();
  broker.closeAll();

  // --- verdict ----------------------------------------------------------
  bool ok = true;
  const auto fail = [&ok](const char* what) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ok = false;
  };

  if (executed != opt.steps) fail("solver run did not complete");
  // The broker's session count is the direct-relay count (plus reconnect
  // admissions), never the client population.
  const int directRelays = opt.depth >= 2 ? 1 : opt.relays;
  if (broker.numClients() >
      directRelays + static_cast<int>(broker.stats().reconnects)) {
    fail("broker fan-out exceeded direct relays");
  }
  std::uint64_t totalFrames = 0, clientsWithFrames = 0;
  for (const auto n : framesGot) {
    totalFrames += n;
    clientsWithFrames += n > 0 ? 1 : 0;
  }
  if (clientsWithFrames != static_cast<std::uint64_t>(numClients)) {
    fail("some client never received a usable frame");
  }
  if (opt.killRelay >= 0) {
    std::uint64_t reconnected = 0;
    for (int k = 0; k < opt.clientsPerRelay; ++k) {
      const auto idx = static_cast<std::size_t>(
          opt.killRelay * opt.clientsPerRelay + k);
      reconnected += clients[idx]->reconnects() > 0 ? 1 : 0;
    }
    if (reconnected != static_cast<std::uint64_t>(opt.clientsPerRelay)) {
      fail("clients of the killed relay did not all reconnect");
    }
  }
  for (int r = 0; r < opt.relays; ++r) {
    const auto& node = *relays[static_cast<std::size_t>(r)];
    if (r != opt.killRelay && node.upstreamSubscriptionCount() > 1) {
      fail("relay holds more than one upstream image subscription");
    }
    std::printf(
        "relay %d: forwarded=%llu shed=%llu cache=%llu B fanout=%d "
        "upstream_subs=%llu ttff=%.6fs\n",
        r, static_cast<unsigned long long>(node.stats().framesForwarded),
        static_cast<unsigned long long>(node.stats().levelsShed),
        static_cast<unsigned long long>(node.cacheBytes()),
        node.numDownstream(),
        static_cast<unsigned long long>(node.stats().upstreamSubscribes),
        node.stats().ttffSeconds);
  }
  std::printf(
      "soak: steps=%d relays=%d depth=%d clients=%d frames=%llu "
      "broker_sessions=%d broker_levels_shed=%llu %s\n",
      executed, opt.relays, opt.depth, numClients,
      static_cast<unsigned long long>(totalFrames), broker.numClients(),
      static_cast<unsigned long long>(broker.stats().levelsShed),
      ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
